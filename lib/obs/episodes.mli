(** Stall-episode detection over per-write attribution quanta.

    The tree's write path attributes every paced microsecond to a cause
    (merge1 / merge2 / hard; the quanta tile each pacing window exactly —
    DESIGN.md §8). This detector segments that per-operation stream into
    *episodes*: maximal runs of stalled writes separated by at least a
    configurable quiet gap. An episode is the unit the stability
    literature plots (Luo & Carey count and size stall episodes per
    epoch); its attribution sums preserve the tiling invariant, so the
    merge1/merge2/hard totals of an episode account for every
    microsecond of its stall time.

    Feed order must be time order (the write path emits samples in
    completion order). All float output uses fixed ["%.3f"] formats, so
    same-seed runs render byte-identical series. *)

type t

(** [create ?gap_us ()] starts an empty detector. Two stalled writes
    whose stall intervals are separated by more than [gap_us] of quiet
    simulated time (default [10_000.], i.e. 10 ms) belong to different
    episodes. *)
val create : ?gap_us:float -> unit -> t

(** [feed t ~time_us ~merge1_us ~merge2_us ~hard_us] records the pacing
    attribution of one write completing at [time_us]. A write with zero
    total stall contributes nothing (episodes are separated by quiet
    *time*, not op count). The stall is taken to occupy
    [[time_us - total, time_us]]. *)
val feed :
  t -> time_us:float -> merge1_us:float -> merge2_us:float -> hard_us:float ->
  unit

(** Total stalled microseconds fed so far — every episode's stall time
    comes from this budget, so [sum of ep_total_us over episodes =
    fed_total_us] (the episode-tiling invariant checked by
    [@soak-smoke]). *)
val fed_total_us : t -> float

(** Stalled samples fed so far (writes with nonzero pacing time). *)
val fed_samples : t -> int

type episode = {
  ep_start_us : float;  (** start of the first stall interval *)
  ep_end_us : float;  (** completion time of the last stalled write *)
  ep_ops : int;  (** stalled writes in the episode *)
  ep_merge1_us : float;
  ep_merge2_us : float;
  ep_hard_us : float;
  ep_total_us : float;  (** = merge1 + merge2 + hard within rounding *)
  ep_label : string;
      (** dominant cause: "merge1" | "merge2" | "hard" when one cause
          covers at least half the episode, "mixed" otherwise *)
}

(** Episodes in time order, including the one still open (feeding more
    samples may extend it). Does not mutate the detector. *)
val episodes : t -> episode list

(** JSON array of episodes (fixed float formats). *)
val to_json : episode list -> string

(** CSV with header:
    [start_us,end_us,ops,merge1_us,merge2_us,hard_us,total_us,label]. *)
val to_csv : episode list -> string

(** [emit_counters tr t] renders the episode list as Chrome counter
    tracks on [tr]: one ["stall"] counter sample at each episode start
    carrying the per-cause totals, and a zero sample at its end so the
    track drops back to the baseline between episodes. *)
val emit_counters : Trace.t -> t -> unit
