type building = {
  mutable b_start_us : float;
  mutable b_end_us : float;
  mutable b_ops : int;
  mutable b_merge1_us : float;
  mutable b_merge2_us : float;
  mutable b_hard_us : float;
  mutable b_total_us : float;
}

type t = {
  gap_us : float;
  mutable cur : building option;
  mutable closed : building list;  (* reverse time order *)
  mutable fed_total_us : float;
  mutable fed_samples : int;
}

let create ?(gap_us = 10_000.0) () =
  { gap_us; cur = None; closed = []; fed_total_us = 0.0; fed_samples = 0 }

let feed t ~time_us ~merge1_us ~merge2_us ~hard_us =
  let total = merge1_us +. merge2_us +. hard_us in
  if total > 0.0 then begin
    t.fed_total_us <- t.fed_total_us +. total;
    t.fed_samples <- t.fed_samples + 1;
    let start_us = time_us -. total in
    let fresh () =
      {
        b_start_us = start_us;
        b_end_us = time_us;
        b_ops = 1;
        b_merge1_us = merge1_us;
        b_merge2_us = merge2_us;
        b_hard_us = hard_us;
        b_total_us = total;
      }
    in
    match t.cur with
    | Some b when start_us -. b.b_end_us <= t.gap_us ->
        b.b_end_us <- time_us;
        b.b_ops <- b.b_ops + 1;
        b.b_merge1_us <- b.b_merge1_us +. merge1_us;
        b.b_merge2_us <- b.b_merge2_us +. merge2_us;
        b.b_hard_us <- b.b_hard_us +. hard_us;
        b.b_total_us <- b.b_total_us +. total
    | Some b ->
        t.closed <- b :: t.closed;
        t.cur <- Some (fresh ())
    | None -> t.cur <- Some (fresh ())
  end

let fed_total_us t = t.fed_total_us
let fed_samples t = t.fed_samples

type episode = {
  ep_start_us : float;
  ep_end_us : float;
  ep_ops : int;
  ep_merge1_us : float;
  ep_merge2_us : float;
  ep_hard_us : float;
  ep_total_us : float;
  ep_label : string;
}

(* Dominant-cause label; ties resolve in severity order (hard beats
   merge2 beats merge1) so the label is deterministic. *)
let label_of ~merge1_us ~merge2_us ~hard_us ~total_us =
  if total_us <= 0.0 then "mixed"
  else
    let half = total_us /. 2.0 in
    if hard_us >= half then "hard"
    else if merge2_us >= half then "merge2"
    else if merge1_us >= half then "merge1"
    else "mixed"

let finish (b : building) =
  {
    ep_start_us = b.b_start_us;
    ep_end_us = b.b_end_us;
    ep_ops = b.b_ops;
    ep_merge1_us = b.b_merge1_us;
    ep_merge2_us = b.b_merge2_us;
    ep_hard_us = b.b_hard_us;
    ep_total_us = b.b_total_us;
    ep_label =
      label_of ~merge1_us:b.b_merge1_us ~merge2_us:b.b_merge2_us
        ~hard_us:b.b_hard_us ~total_us:b.b_total_us;
  }

let episodes t =
  let all =
    match t.cur with Some b -> b :: t.closed | None -> t.closed
  in
  List.rev_map finish all

let to_json eps =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"start_us\": %.3f, \"end_us\": %.3f, \"ops\": %d, \
            \"merge1_us\": %.3f, \"merge2_us\": %.3f, \"hard_us\": %.3f, \
            \"total_us\": %.3f, \"label\": \"%s\"}"
           e.ep_start_us e.ep_end_us e.ep_ops e.ep_merge1_us e.ep_merge2_us
           e.ep_hard_us e.ep_total_us e.ep_label))
    eps;
  Buffer.add_string buf "]";
  Buffer.contents buf

let to_csv eps =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "start_us,end_us,ops,merge1_us,merge2_us,hard_us,total_us,label\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%.3f,%.3f,%d,%.3f,%.3f,%.3f,%.3f,%s\n" e.ep_start_us
           e.ep_end_us e.ep_ops e.ep_merge1_us e.ep_merge2_us e.ep_hard_us
           e.ep_total_us e.ep_label))
    eps;
  Buffer.contents buf

let emit_counters tr t =
  List.iter
    (fun e ->
      Trace.counter tr ~name:"stall" ~ts_us:e.ep_start_us
        ~args:
          [ ("merge1_us", Trace.F e.ep_merge1_us);
            ("merge2_us", Trace.F e.ep_merge2_us);
            ("hard_us", Trace.F e.ep_hard_us) ];
      Trace.counter tr ~name:"stall" ~ts_us:e.ep_end_us
        ~args:
          [ ("merge1_us", Trace.F 0.0); ("merge2_us", Trace.F 0.0);
            ("hard_us", Trace.F 0.0) ])
    (episodes t)
