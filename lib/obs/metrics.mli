(** Pull-based metrics registry.

    Subsystems keep their existing cheap mutable stat records as the
    hot-path representation and register *closures* over them; the
    registry samples every metric only when a dump is requested. This is
    the "thin compatibility shim" pattern: [Tree.stats],
    [Simdisk.Disk] counters, [Faults] counters and [Leveldb.stats] stay
    untouched, and the registry provides the single named namespace and
    the single pair of writers (text and JSON) over all of them.

    Dump output is sorted by metric name, so it is deterministic and
    diff-friendly. Histograms expand into
    [.count]/[.mean]/[.p50]/[.p99]/[.p999]/[.max] sub-keys. *)

type t

val create : unit -> t

(** [counter t name ~help f] registers a monotonic integer read through
    [f]. Raises [Invalid_argument] on a duplicate [name]. *)
val counter : t -> string -> help:string -> (unit -> int) -> unit

(** [gauge t name ~help f] registers a point-in-time float. *)
val gauge : t -> string -> help:string -> (unit -> float) -> unit

(** [histogram t name ~help h] registers a live histogram; dumps sample
    its summary statistics at dump time. *)
val histogram : t -> string -> help:string -> Repro_util.Histogram.t -> unit

(** Registered metric names (sorted). *)
val names : t -> string list
[@@lint.allow "U001"] (* introspection surface beside [dump] *)

(** [dump ?prefix t] renders ["name value\n"] lines, sorted by name,
    restricted to names starting with [prefix] when given. *)
val dump : ?prefix:string -> t -> string

(** [dump_json ?prefix t] renders one flat JSON object keyed by metric
    name (histograms become nested objects). *)
val dump_json : ?prefix:string -> t -> string
