(** Deterministic seeded message passing on a simulated clock.

    The network twin of {!Simdisk}: endpoints exchange opaque byte
    payloads over directed links, every delivery is charged simulated
    latency (base + seeded jitter), and each link carries an ordinal
    fault plan in the {!Simdisk.Faults} style — [schedule_drop ~after:3]
    fires on the third send over that link counted from the arming
    point. Partitions are undirected and unordinal: while a pair is
    partitioned every message between them is dropped, until {!heal}.

    Request/response is layered on the same datagrams: {!call} sends a
    tagged request and pumps the event queue (advancing the clock event
    by event) until the matching reply arrives or the deadline passes.
    A server handler registered with {!set_handler} runs synchronously
    at its message's delivery time; its reply is itself a message,
    subject to the reverse link's faults. Late replies to calls that
    already timed out are counted as strays, never delivered.

    Everything — latency jitter, fault firing, event ordering — derives
    from the creation seed, so same-seed runs are byte-identical. *)

type link_fault =
  | Drop
  | Dup
  | Delay of int  (** extra microseconds on top of drawn latency *)
  | Reorder  (** delivered, but pushed behind later traffic *)

type counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;  (** scheduled drops that fired *)
  mutable duplicated : int;
  mutable delayed : int;
  mutable reordered : int;
  mutable partition_drops : int;
  mutable strays : int;  (** deliveries no one consumed *)
  mutable calls : int;
  mutable call_timeouts : int;
}

type link = {
  l_src : string;
  l_dst : string;
  (* (absolute send ordinal, fault), Simdisk.Faults-style *)
  mutable l_plan : (int * link_fault) list;
  mutable l_seen : int;
  mutable l_sent : int;
  mutable l_delivered : int;
  mutable l_dropped : int;
}

type event = {
  ev_deliver_us : float;
  ev_seq : int;  (** FIFO tiebreak for simultaneous deliveries *)
  ev_src : string;
  ev_dst : string;
  ev_sent_us : float;
  ev_payload : string;
}

type endpoint = {
  ep_name : string;
  ep_net : net;
  mutable ep_handler : (src:string -> string -> string option) option;
  (* one outstanding call per endpoint: (tag, reply slot) *)
  mutable ep_pending : (string * string option ref) option;
}

and net = {
  prng : Repro_util.Prng.t;
  base_latency_us : int;
  jitter_us : int;
  mutable now : float;
  mutable seq : int;
  mutable call_id : int;
  mutable queue : event list;  (** sorted by (deliver_us, seq) *)
  mutable endpoints : (string * endpoint) list;
  mutable links : link list;
  mutable parts : (string * string) list;  (** normalized partitioned pairs *)
  mutable trace : Obs.Trace.t option;
  c : counters;
}

type t = net

let create ?(seed = 1) ?(base_latency_us = 100) ?(jitter_us = 50) () =
  {
    prng = Repro_util.Prng.of_int ((seed * 2_147_483_629) lxor 0x6e65);
    base_latency_us;
    jitter_us;
    now = 0.0;
    seq = 0;
    call_id = 0;
    queue = [];
    endpoints = [];
    links = [];
    parts = [];
    trace = None;
    c =
      {
        sent = 0;
        delivered = 0;
        dropped = 0;
        duplicated = 0;
        delayed = 0;
        reordered = 0;
        partition_drops = 0;
        strays = 0;
        calls = 0;
        call_timeouts = 0;
      };
  }

let now_us t = t.now
let counters t = t.c
let set_trace t tr = t.trace <- Some tr

(* ------------------------------------------------------------------ *)
(* Endpoints *)

let endpoint t name =
  match List.assoc_opt name t.endpoints with
  | Some ep -> ep
  | None ->
      let ep =
        { ep_name = name; ep_net = t; ep_handler = None; ep_pending = None }
      in
      t.endpoints <- t.endpoints @ [ (name, ep) ];
      ep

let name ep = ep.ep_name
let set_handler ep h = ep.ep_handler <- Some h
let clear_handler ep = ep.ep_handler <- None

(* ------------------------------------------------------------------ *)
(* Links, partitions, fault plans *)

let link t src dst =
  match
    List.find_opt
      (fun l -> String.equal l.l_src src && String.equal l.l_dst dst)
      t.links
  with
  | Some l -> l
  | None ->
      let l =
        {
          l_src = src;
          l_dst = dst;
          l_plan = [];
          l_seen = 0;
          l_sent = 0;
          l_delivered = 0;
          l_dropped = 0;
        }
      in
      t.links <- t.links @ [ l ];
      l

let norm_pair a b = if String.compare a b <= 0 then (a, b) else (b, a)

let partitioned t a b =
  let p = norm_pair a b in
  List.exists (fun (x, y) -> String.equal x (fst p) && String.equal y (snd p))
    t.parts

let partition t a b =
  if not (partitioned t a b) then t.parts <- norm_pair a b :: t.parts

let heal t a b =
  let p = norm_pair a b in
  t.parts <-
    List.filter
      (fun (x, y) -> not (String.equal x (fst p) && String.equal y (snd p)))
      t.parts

let schedule t ~src ~dst ~after fault =
  let l = link t src dst in
  l.l_plan <- (l.l_seen + after, fault) :: l.l_plan

let schedule_drop t ~src ~dst ~after = schedule t ~src ~dst ~after Drop
let schedule_duplicate t ~src ~dst ~after = schedule t ~src ~dst ~after Dup

let schedule_delay t ~src ~dst ~after ~extra_us =
  schedule t ~src ~dst ~after (Delay extra_us)

(* [count] consecutive sends all delayed, starting at [after]. *)
let schedule_delay_burst t ~src ~dst ~after ~count ~extra_us =
  for i = 0 to count - 1 do
    schedule t ~src ~dst ~after:(after + i) (Delay extra_us)
  done

let schedule_reorder t ~src ~dst ~after = schedule t ~src ~dst ~after Reorder

let pending_faults t =
  List.fold_left
    (fun acc l ->
      acc
      + List.length (List.filter (fun (ord, _) -> ord > l.l_seen) l.l_plan))
    0 t.links

let clear_faults t =
  List.iter (fun l -> l.l_plan <- []) t.links;
  t.parts <- []

(* ------------------------------------------------------------------ *)
(* Transmission *)

let trace_event t ~name ~src ~dst ~ts ~dur ~bytes =
  match t.trace with
  | None -> ()
  | Some tr ->
      if Obs.Trace.enabled tr then
        Obs.Trace.complete tr ~cat:"net"
          ~name:(Printf.sprintf "%s %s->%s" name src dst)
          ~ts_us:ts ~dur_us:dur
          ~args:[ ("bytes", Obs.Trace.I bytes) ]

let insert_event t ~deliver ~src ~dst payload =
  t.seq <- t.seq + 1;
  let ev =
    {
      ev_deliver_us = deliver;
      ev_seq = t.seq;
      ev_src = src;
      ev_dst = dst;
      ev_sent_us = t.now;
      ev_payload = payload;
    }
  in
  let rec ins = function
    | [] -> [ ev ]
    | e :: rest ->
        if
          Float.compare e.ev_deliver_us ev.ev_deliver_us < 0
          || Float.compare e.ev_deliver_us ev.ev_deliver_us = 0
             && e.ev_seq < ev.ev_seq
        then e :: ins rest
        else ev :: e :: rest
  in
  t.queue <- ins t.queue

let latency t =
  float_of_int t.base_latency_us
  +.
  if t.jitter_us = 0 then 0.0
  else float_of_int (Repro_util.Prng.int t.prng (t.jitter_us + 1))

(* The fault-firing move from Simdisk.Faults: partition the plan on the
   current ordinal; at most the first match fires. *)
let take plan seen =
  let fire, keep = List.partition (fun (ord, _) -> ord = seen) plan in
  ((match fire with [] -> None | (_, f) :: _ -> Some f), keep)

let transmit t ~src ~dst payload =
  let l = link t src dst in
  l.l_seen <- l.l_seen + 1;
  l.l_sent <- l.l_sent + 1;
  t.c.sent <- t.c.sent + 1;
  let bytes = String.length payload in
  if partitioned t src dst then begin
    t.c.partition_drops <- t.c.partition_drops + 1;
    l.l_dropped <- l.l_dropped + 1;
    trace_event t ~name:"part-drop" ~src ~dst ~ts:t.now ~dur:0.0 ~bytes
  end
  else begin
    let fault, keep = take l.l_plan l.l_seen in
    l.l_plan <- keep;
    match fault with
    | Some Drop ->
        t.c.dropped <- t.c.dropped + 1;
        l.l_dropped <- l.l_dropped + 1;
        trace_event t ~name:"drop" ~src ~dst ~ts:t.now ~dur:0.0 ~bytes
    | Some Dup ->
        t.c.duplicated <- t.c.duplicated + 1;
        insert_event t ~deliver:(t.now +. latency t) ~src ~dst payload;
        insert_event t ~deliver:(t.now +. latency t) ~src ~dst payload
    | Some (Delay extra) ->
        t.c.delayed <- t.c.delayed + 1;
        insert_event t
          ~deliver:(t.now +. latency t +. float_of_int extra)
          ~src ~dst payload
    | Some Reorder ->
        (* push behind anything sent within the next few latencies *)
        t.c.reordered <- t.c.reordered + 1;
        insert_event t
          ~deliver:(t.now +. latency t +. float_of_int (4 * t.base_latency_us))
          ~src ~dst payload
    | None -> insert_event t ~deliver:(t.now +. latency t) ~src ~dst payload
  end

(* ------------------------------------------------------------------ *)
(* Delivery *)

(* Envelope: 'Q'/'R' + 8-hex-digit call tag + body for call traffic,
   'D' + body for bare datagrams. *)

let stray t =
  t.c.strays <- t.c.strays + 1

let deliver t ev =
  t.now <- Float.max t.now ev.ev_deliver_us;
  trace_event t ~name:"msg" ~src:ev.ev_src ~dst:ev.ev_dst ~ts:ev.ev_sent_us
    ~dur:(ev.ev_deliver_us -. ev.ev_sent_us)
    ~bytes:(String.length ev.ev_payload);
  match List.assoc_opt ev.ev_dst t.endpoints with
  | None -> stray t
  | Some ep -> (
      let p = ev.ev_payload in
      let plen = String.length p in
      let consume_link () =
        let l = link t ev.ev_src ev.ev_dst in
        l.l_delivered <- l.l_delivered + 1;
        t.c.delivered <- t.c.delivered + 1
      in
      if plen = 0 then stray t
      else
        match p.[0] with
        | 'D' -> (
            match ep.ep_handler with
            | None -> stray t
            | Some h ->
                consume_link ();
                ignore (h ~src:ev.ev_src (String.sub p 1 (plen - 1))))
        | 'Q' when plen >= 9 -> (
            match ep.ep_handler with
            | None -> stray t
            | Some h -> (
                consume_link ();
                let tag = String.sub p 1 8 in
                match h ~src:ev.ev_src (String.sub p 9 (plen - 9)) with
                | None -> ()
                | Some reply ->
                    transmit t ~src:ev.ev_dst ~dst:ev.ev_src
                      ("R" ^ tag ^ reply)))
        | 'R' when plen >= 9 -> (
            let tag = String.sub p 1 8 in
            match ep.ep_pending with
            | Some (ptag, slot) when String.equal ptag tag && !slot = None ->
                consume_link ();
                slot := Some (String.sub p 9 (plen - 9))
            | _ -> stray t (* late or duplicate reply *))
        | _ -> stray t)

(* Process every event due up to [until], then settle the clock there. *)
let advance_to t until =
  let rec pump () =
    match t.queue with
    | ev :: rest when Float.compare ev.ev_deliver_us until <= 0 ->
        t.queue <- rest;
        deliver t ev;
        pump ()
    | _ -> ()
  in
  pump ();
  t.now <- Float.max t.now until

let sleep t us = advance_to t (t.now +. float_of_int (max 0 us))

(* ------------------------------------------------------------------ *)
(* Datagrams and calls *)

let send ep ~dst payload = transmit ep.ep_net ~src:ep.ep_name ~dst ("D" ^ payload)

let call ep ~dst ~timeout_us payload =
  let t = ep.ep_net in
  t.c.calls <- t.c.calls + 1;
  t.call_id <- t.call_id + 1;
  let tag = Printf.sprintf "%08x" (t.call_id land 0xFFFFFFFF) in
  let slot = ref None in
  ep.ep_pending <- Some (tag, slot);
  let deadline = t.now +. float_of_int timeout_us in
  (* protect: a handler raising (e.g. detected corruption on the serving
     store) must not leave a stale pending slot behind *)
  Fun.protect
    ~finally:(fun () -> ep.ep_pending <- None)
    (fun () ->
      transmit t ~src:ep.ep_name ~dst ("Q" ^ tag ^ payload);
      let rec pump () =
        match !slot with
        | Some reply -> Some reply
        | None -> (
            match t.queue with
            | ev :: rest when Float.compare ev.ev_deliver_us deadline <= 0 ->
                t.queue <- rest;
                deliver t ev;
                pump ()
            | _ ->
                t.now <- Float.max t.now deadline;
                t.c.call_timeouts <- t.c.call_timeouts + 1;
                None)
      in
      pump ())

(* ------------------------------------------------------------------ *)
(* Introspection *)

let link_stats t =
  List.map
    (fun l -> (l.l_src, l.l_dst, l.l_sent, l.l_delivered, l.l_dropped))
    t.links
  |> List.sort (fun (a, b, _, _, _) (c, d, _, _, _) ->
         match String.compare a c with 0 -> String.compare b d | n -> n)

let register_metrics reg t =
  let c = t.c in
  Obs.Metrics.counter reg "net.sent" ~help:"messages entering the network"
    (fun () -> c.sent);
  Obs.Metrics.counter reg "net.delivered" ~help:"messages consumed by a peer"
    (fun () -> c.delivered);
  Obs.Metrics.counter reg "net.dropped" ~help:"scheduled drops fired"
    (fun () -> c.dropped);
  Obs.Metrics.counter reg "net.duplicated" ~help:"scheduled duplicates fired"
    (fun () -> c.duplicated);
  Obs.Metrics.counter reg "net.delayed" ~help:"scheduled delays fired"
    (fun () -> c.delayed);
  Obs.Metrics.counter reg "net.reordered" ~help:"scheduled reorders fired"
    (fun () -> c.reordered);
  Obs.Metrics.counter reg "net.partition_drops"
    ~help:"messages dropped by an active partition" (fun () ->
      c.partition_drops);
  Obs.Metrics.counter reg "net.strays"
    ~help:"deliveries no endpoint consumed (late replies, no handler)"
    (fun () -> c.strays);
  Obs.Metrics.counter reg "net.calls" ~help:"request/response calls started"
    (fun () -> c.calls);
  Obs.Metrics.counter reg "net.call_timeouts"
    ~help:"calls that hit their deadline" (fun () -> c.call_timeouts)
