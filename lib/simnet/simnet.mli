(** Deterministic seeded message passing on a simulated clock — the
    network twin of {!Simdisk}.

    Named endpoints exchange opaque byte payloads over directed links.
    Each delivery is charged simulated latency (base + seeded jitter);
    each directed link carries an ordinal fault plan in the
    {!Simdisk.Faults} style ([schedule_drop ~after:3] fires on the third
    send over that link, counted from the arming point); partitions are
    undirected and absolute until healed. Same seed, same behavior,
    byte for byte. *)

type t

(** Handle for one named party on the network. *)
type endpoint

(** Per-network counters (live; read through {!counters}). *)
type counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;  (** scheduled drops that fired *)
  mutable duplicated : int;
  mutable delayed : int;
  mutable reordered : int;
  mutable partition_drops : int;  (** messages eaten by active partitions *)
  mutable strays : int;
      (** deliveries no one consumed: late replies, missing handlers *)
  mutable calls : int;
  mutable call_timeouts : int;
}

(** [create ~seed ~base_latency_us ~jitter_us ()] — a fresh network at
    simulated time 0. Latency per delivery is
    [base_latency_us + uniform(0, jitter_us)]. *)
val create : ?seed:int -> ?base_latency_us:int -> ?jitter_us:int -> unit -> t

(** Simulated network clock, microseconds. *)
val now_us : t -> float

(** [sleep t us] advances the clock by [us], delivering everything that
    comes due along the way (a timed-out caller backing off still lets
    in-flight traffic land — as strays, if nobody wants it anymore). *)
val sleep : t -> int -> unit

(** {1 Endpoints} *)

(** [endpoint t name] returns the endpoint registered under [name],
    creating it on first use. *)
val endpoint : t -> string -> endpoint

val name : endpoint -> string
[@@lint.allow "U001"] (* endpoint accessor *)

(** [set_handler ep h] installs the server function: [h ~src body]
    runs synchronously at each inbound message's delivery time and may
    return a reply payload. *)
val set_handler : endpoint -> (src:string -> string -> string option) -> unit

(** Remove the handler: subsequent inbound messages count as strays —
    the moved-away server stops answering, it does not bounce. *)
val clear_handler : endpoint -> unit

(** {1 Messaging} *)

(** [send ep ~dst payload] — fire-and-forget datagram. *)
val send : endpoint -> dst:string -> string -> unit

(** [call ep ~dst ~timeout_us payload] sends a tagged request and pumps
    the network (advancing the clock event by event) until the matching
    reply arrives — [Some reply] — or the deadline passes — [None], with
    the clock settled at the deadline. One outstanding call per
    endpoint; replies arriving after the timeout are strays. *)
val call : endpoint -> dst:string -> timeout_us:int -> string -> string option

(** {1 Fault plans (per directed link, ordinal-scheduled)} *)

val schedule_drop : t -> src:string -> dst:string -> after:int -> unit
val schedule_duplicate : t -> src:string -> dst:string -> after:int -> unit

val schedule_delay :
  t -> src:string -> dst:string -> after:int -> extra_us:int -> unit

(** [schedule_delay_burst ~after ~count ~extra_us] delays [count]
    consecutive sends starting at ordinal [after]. *)
val schedule_delay_burst :
  t -> src:string -> dst:string -> after:int -> count:int -> extra_us:int ->
  unit

(** Deliver, but pushed behind several base-latencies of later traffic. *)
val schedule_reorder : t -> src:string -> dst:string -> after:int -> unit

(** [partition t a b] drops everything between [a] and [b] (both
    directions) until {!heal}. Idempotent. *)
val partition : t -> string -> string -> unit

val heal : t -> string -> string -> unit
val partitioned : t -> string -> string -> bool

(** Scheduled link faults armed but not yet reached (partitions are a
    state, not a count, and are excluded). *)
val pending_faults : t -> int

(** Drop all scheduled link faults and heal all partitions. *)
val clear_faults : t -> unit

(** {1 Introspection} *)

val counters : t -> counters

(** Per-directed-link [(src, dst, sent, delivered, dropped)], sorted. *)
val link_stats : t -> (string * string * int * int * int) list
[@@lint.allow "U001"] (* harness probe for link-level assertions *)

(** Register the [net.*] counter family on [reg]. *)
val register_metrics : Obs.Metrics.t -> t -> unit

(** Attach a tracer: every delivery becomes a ["net"] span from send to
    delivery time on the simnet clock; drops become zero-length spans. *)
val set_trace : t -> Obs.Trace.t -> unit
[@@lint.allow "U001"] (* observability hook *)
