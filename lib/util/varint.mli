(** LEB128-style variable-length integer encoding, used by the SSTable
    record format and the write-ahead log. *)

(** [write buf n] appends the varint encoding of [n >= 0]. *)
val write : Buffer.t -> int -> unit

(** [read s pos] decodes at [pos]: [(value, next_pos)]. Raises
    [Invalid_argument] on truncated or oversized input. *)
val read : string -> int -> int * int

val read_bytes : bytes -> int -> int * int
[@@lint.allow "U001"] (* bytes variant kept beside [read] *)

(** Encoded length of [n], in bytes. *)
val size : int -> int
