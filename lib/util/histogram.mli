(** Log-bucketed latency histogram.

    Records values (typically simulated microseconds) into exponentially
    sized buckets with 32 linear sub-buckets per power of two,
    HdrHistogram-style: relative quantization error is bounded by ~3%.
    Backs every latency-tail figure in the experiments. *)

type t

val create : unit -> t
val clear : t -> unit
[@@lint.allow "U001"] (* reuse hook beside [create] *)

(** [add t v] records one observation ([v] clamped at 0). *)
val add : t -> int -> unit

val count : t -> int
val max_value : t -> int
val min_value : t -> int
val mean : t -> float

(** [percentile t p] is the smallest recorded bucket edge at or above the
    [p]-th percentile (0 < p <= 100); 0 when empty. When the rank rounds
    up to the full population (in particular [p = 100]) the exact
    recorded maximum is returned, so [percentile t 100.0 = max_value t]. *)
val percentile : t -> float -> int

(** [merge ~into src] accumulates [src] into [into]. *)
val merge : into:t -> t -> unit

(** Renders "n=... mean=... p50=... p99=... p99.9=... max=...". *)
val pp : Format.formatter -> t -> unit
