(** Log-bucketed latency histogram.

    Records values (typically simulated microseconds) into exponentially
    sized buckets with linear sub-buckets, HdrHistogram-style, supporting
    the percentile and max queries the experiments report (p50/p99/p99.9
    insert latency, worst-case stall). *)

let sub_bucket_bits = 5 (* 32 linear sub-buckets per power of two *)
let sub_buckets = 1 lsl sub_bucket_bits

type t = {
  counts : int array;
  mutable total : int;
  mutable max_value : int;
  mutable min_value : int;
  mutable sum : float;
}

let bucket_count = 64 * sub_buckets

let create () =
  {
    counts = Array.make bucket_count 0;
    total = 0;
    max_value = 0;
    min_value = max_int;
    sum = 0.0;
  }

let clear t =
  Array.fill t.counts 0 bucket_count 0;
  t.total <- 0;
  t.max_value <- 0;
  t.min_value <- max_int;
  t.sum <- 0.0

(* Index: for v < sub_buckets the mapping is identity; above that, the top
   sub_bucket_bits bits of v select a linear position inside the bucket for
   v's magnitude. Relative error is bounded by 1/sub_buckets ~= 3%. *)
let index_of v =
  if v < sub_buckets then v
  else
    let magnitude =
      (* position of highest set bit *)
      let rec go v acc = if v = 0 then acc - 1 else go (v lsr 1) (acc + 1) in
      go v 0
    in
    let bucket = magnitude - sub_bucket_bits + 1 in
    let sub = (v lsr (magnitude - sub_bucket_bits)) land (sub_buckets - 1) in
    (bucket * sub_buckets) + sub

(* Lower edge of the value range covered by histogram slot [idx]. *)
let value_of idx =
  if idx < sub_buckets then idx
  else
    let bucket = idx / sub_buckets in
    let sub = idx mod sub_buckets in
    (sub_buckets lor sub) lsl (bucket - 1)

(** [add t v] records one observation of value [v >= 0]. *)
let add t v =
  let v = if v < 0 then 0 else v in
  let idx = index_of v in
  if idx < bucket_count then t.counts.(idx) <- t.counts.(idx) + 1
  else t.counts.(bucket_count - 1) <- t.counts.(bucket_count - 1) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. float_of_int v;
  if v > t.max_value then t.max_value <- v;
  if v < t.min_value then t.min_value <- v

let count t = t.total

let max_value t = if t.total = 0 then 0 else t.max_value

let min_value t = if t.total = 0 then 0 else t.min_value

let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

(** [percentile t p] returns the smallest recorded bucket edge at or above
    the [p]-th percentile (0 < p <= 100). *)
let percentile t p =
  if t.total = 0 then 0
  else begin
    let target =
      let exact = float_of_int t.total *. p /. 100.0 in
      let c = int_of_float (Float.ceil exact) in
      if c < 1 then 1 else if c > t.total then t.total else c
    in
    if target = t.total then t.max_value
      (* the rank is the whole population (p = 100, or p rounds up to
         it): answer with the exact recorded maximum, not the lower
         edge of its bucket *)
    else
    let rec go idx seen =
      if idx >= bucket_count then t.max_value
      else
        let seen = seen + t.counts.(idx) in
        if seen >= target then
          let v = value_of idx in
          if v > t.max_value then t.max_value else v
        else go (idx + 1) seen
    in
    go 0 0
  end

(** [merge ~into src] accumulates [src] into [into]. *)
let merge ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.total <- into.total + src.total;
  into.sum <- into.sum +. src.sum;
  if src.total > 0 then begin
    if src.max_value > into.max_value then into.max_value <- src.max_value;
    if src.min_value < into.min_value then into.min_value <- src.min_value
  end

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.1f p50=%d p99=%d p99.9=%d max=%d" t.total (mean t)
    (percentile t 50.0) (percentile t 99.0) (percentile t 99.9) (max_value t)
