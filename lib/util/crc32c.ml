(** CRC32C (Castagnoli) checksums, table-slicing kernel.

    Page headers and log records carry a CRC so that recovery can detect
    torn writes, mirroring the checks Stasis performs for bLSM (§4.4.2).

    The classic one-table loop is bound by its serial dependency chain:
    every byte's table lookup waits on the previous byte's result. The
    slicing construction (Intel's slice-by-8, here unrolled to a 16-byte
    stride over 16 derived tables) folds whole blocks per iteration: only
    the first four lookups depend on the running state, the rest index
    straight off input bytes, so the CPU overlaps them. A byte-at-a-time
    loop remains for unaligned tails and keeps the old behaviour exactly
    (validated against the standard vectors and the bytewise reference in
    the test suite). *)

let polynomial = 0x82F63B78 (* reflected CRC32C polynomial *)

let nslices = 16

(* Flattened tables: slot [k*256 + n] holds table k. Table 0 is the
   classic byte table; table k advances a byte through k additional zero
   bytes, so sixteen lookups combine into one 16-byte step. *)
let tables =
  lazy
    (let t = Array.make (nslices * 256) 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 = 1 then c := (!c lsr 1) lxor polynomial
         else c := !c lsr 1
       done;
       t.(n) <- !c
     done;
     for k = 1 to nslices - 1 do
       for n = 0 to 255 do
         let prev = t.(((k - 1) * 256) + n) in
         t.((k * 256) + n) <- (prev lsr 8) lxor t.(prev land 0xFF)
       done
     done;
     t)

(** [update crc s pos len] folds [len] bytes of [s] starting at [pos] into
    a running checksum. Start from [0xFFFFFFFF]-complemented state via
    {!string} unless composing incrementally. *)
let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32c.update";
  let tab = Lazy.force tables in
  let crc = ref (crc land 0xFFFFFFFF) in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 16 do
    let j = !i in
    let b0 = Char.code (String.unsafe_get s j)
    and b1 = Char.code (String.unsafe_get s (j + 1))
    and b2 = Char.code (String.unsafe_get s (j + 2))
    and b3 = Char.code (String.unsafe_get s (j + 3)) in
    let c = !crc in
    (* The two 8-lookup halves share no state: independent load chains. *)
    let hi =
      Array.unsafe_get tab ((15 * 256) + ((c lxor b0) land 0xFF))
      lxor Array.unsafe_get tab ((14 * 256) + (((c lsr 8) land 0xFF) lxor b1))
      lxor Array.unsafe_get tab ((13 * 256) + (((c lsr 16) land 0xFF) lxor b2))
      lxor Array.unsafe_get tab ((12 * 256) + ((c lsr 24) lxor b3))
      lxor Array.unsafe_get tab
             ((11 * 256) + Char.code (String.unsafe_get s (j + 4)))
      lxor Array.unsafe_get tab
             ((10 * 256) + Char.code (String.unsafe_get s (j + 5)))
      lxor Array.unsafe_get tab
             ((9 * 256) + Char.code (String.unsafe_get s (j + 6)))
      lxor Array.unsafe_get tab
             ((8 * 256) + Char.code (String.unsafe_get s (j + 7)))
    in
    let lo =
      Array.unsafe_get tab
        ((7 * 256) + Char.code (String.unsafe_get s (j + 8)))
      lxor Array.unsafe_get tab
             ((6 * 256) + Char.code (String.unsafe_get s (j + 9)))
      lxor Array.unsafe_get tab
             ((5 * 256) + Char.code (String.unsafe_get s (j + 10)))
      lxor Array.unsafe_get tab
             ((4 * 256) + Char.code (String.unsafe_get s (j + 11)))
      lxor Array.unsafe_get tab
             ((3 * 256) + Char.code (String.unsafe_get s (j + 12)))
      lxor Array.unsafe_get tab
             ((2 * 256) + Char.code (String.unsafe_get s (j + 13)))
      lxor Array.unsafe_get tab (256 + Char.code (String.unsafe_get s (j + 14)))
      lxor Array.unsafe_get tab (Char.code (String.unsafe_get s (j + 15)))
    in
    crc := hi lxor lo;
    i := j + 16
  done;
  if stop - !i >= 8 then begin
    let j = !i in
    let b0 = Char.code (String.unsafe_get s j)
    and b1 = Char.code (String.unsafe_get s (j + 1))
    and b2 = Char.code (String.unsafe_get s (j + 2))
    and b3 = Char.code (String.unsafe_get s (j + 3)) in
    let c = !crc in
    crc :=
      Array.unsafe_get tab ((7 * 256) + ((c lxor b0) land 0xFF))
      lxor Array.unsafe_get tab ((6 * 256) + (((c lsr 8) land 0xFF) lxor b1))
      lxor Array.unsafe_get tab ((5 * 256) + (((c lsr 16) land 0xFF) lxor b2))
      lxor Array.unsafe_get tab ((4 * 256) + ((c lsr 24) lxor b3))
      lxor Array.unsafe_get tab
             ((3 * 256) + Char.code (String.unsafe_get s (j + 4)))
      lxor Array.unsafe_get tab
             ((2 * 256) + Char.code (String.unsafe_get s (j + 5)))
      lxor Array.unsafe_get tab (256 + Char.code (String.unsafe_get s (j + 6)))
      lxor Array.unsafe_get tab (Char.code (String.unsafe_get s (j + 7)));
    i := j + 8
  end;
  while !i < stop do
    let idx = (!crc lxor Char.code (String.unsafe_get s !i)) land 0xFF in
    crc := (!crc lsr 8) lxor Array.unsafe_get tab idx;
    incr i
  done;
  !crc

(** [string s] is the CRC32C of the whole string. *)
let string s =
  let crc = update 0xFFFFFFFF s 0 (String.length s) in
  crc lxor 0xFFFFFFFF

(** [bytes b pos len] checksums a slice of a byte buffer (no copy: the
    buffer is aliased for the duration of the fold). *)
let bytes b pos len =
  let crc = update 0xFFFFFFFF (Bytes.unsafe_to_string b) pos len in
  crc lxor 0xFFFFFFFF
