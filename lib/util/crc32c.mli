(** CRC32C (Castagnoli) checksums, table-slicing (16 bytes per
    iteration). Page headers and log records carry a CRC so recovery can
    detect torn writes (§4.4.2). *)

(** [update crc s pos len] folds a slice into a running (pre-inverted)
    state; compose incrementally or use {!string}/{!bytes}. *)
val update : int -> string -> int -> int -> int

(** CRC32C of a whole string (CRC32C("123456789") = 0xE3069283). *)
val string : string -> int

(** CRC32C of a byte-buffer slice. *)
val bytes : bytes -> int -> int -> int
