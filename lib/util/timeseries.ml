(** Bucketed timeseries of throughput and latency over simulated time.

    The paper's Figures 7 and 9 are timeseries plots (ops/sec and latency
    against elapsed seconds); this accumulator produces the same rows. *)

type bucket = {
  mutable ops : int;
  lat : Histogram.t;
}

type t = {
  width_us : int; (* bucket width in simulated microseconds *)
  buckets : (int, bucket) Hashtbl.t;
}

let create ~width_us = { width_us; buckets = Hashtbl.create 64 }

let bucket_of t time_us =
  let idx = time_us / t.width_us in
  match Hashtbl.find_opt t.buckets idx with
  | Some b -> b
  | None ->
      let b = { ops = 0; lat = Histogram.create () } in
      Hashtbl.add t.buckets idx b;
      b

(** [record t ~time_us ~latency_us] attributes one completed operation to
    the bucket containing its completion time. *)
let record t ~time_us ~latency_us =
  let b = bucket_of t time_us in
  b.ops <- b.ops + 1;
  Histogram.add b.lat latency_us

type row = {
  t_sec : float;
  ops_per_sec : float;
  mean_latency_ms : float;
  p99_latency_ms : float;
  max_latency_ms : float;
}

(** [rows t] returns one row per bucket in time order, including empty
    buckets between the first and last (an empty bucket is a full stall). *)
let rows t =
  if Hashtbl.length t.buckets = 0 then []
  else begin
    (* Only the min/max of the collected indices are used below, so the
       hash order cannot escape into the rows. *)
    let indices =
      (Hashtbl.fold [@lint.allow "D002"]) (fun k _ acc -> k :: acc) t.buckets []
    in
    let lo = List.fold_left min (List.hd indices) indices in
    let hi = List.fold_left max (List.hd indices) indices in
    let width_sec = float_of_int t.width_us /. 1e6 in
    let result = ref [] in
    for idx = hi downto lo do
      let t_sec = float_of_int idx *. width_sec in
      let row =
        match Hashtbl.find_opt t.buckets idx with
        | None ->
            { t_sec; ops_per_sec = 0.0; mean_latency_ms = 0.0;
              p99_latency_ms = 0.0; max_latency_ms = 0.0 }
        | Some b ->
            {
              t_sec;
              ops_per_sec = float_of_int b.ops /. width_sec;
              mean_latency_ms = Histogram.mean b.lat /. 1000.0;
              p99_latency_ms =
                float_of_int (Histogram.percentile b.lat 99.0) /. 1000.0;
              max_latency_ms =
                float_of_int (Histogram.max_value b.lat) /. 1000.0;
            }
      in
      result := row :: !result
    done;
    !result
  end
