(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized component in the repository draws from this
    generator so experiments are reproducible from a seed. *)

type t

val create : ?seed:int64 -> unit -> t
val of_int : int -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64
[@@lint.allow "U001"] (* raw-output surface of the PRNG API *)

(** 62 nonnegative pseudo-random bits as an OCaml [int]. *)
val bits : t -> int

(** [int t bound] is uniform in [0, bound) (rejection-sampled, no modulo
    bias). Requires [bound > 0]. *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** [split t] derives an independent generator, decoupling consumers'
    consumption rates. *)
val split : t -> t

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [bytes t n] is an [n]-byte random string. *)
val bytes : t -> int -> string
[@@lint.allow "U001"] (* generator-family completeness *)
