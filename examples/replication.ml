(* Geo-replication: the PNUTS deployment pattern.

   bLSM was built as backing storage for PNUTS, Yahoo!'s geographically
   distributed serving store, and its logical log exists partly to feed
   replication (§4.4.2; Rose, bLSM's substrate, was a log-structured
   replication target). This example runs a primary and a follower over
   the simulated network: log-shipped catch-up, retries through message
   loss, a follower that fell behind and needs a snapshot bootstrap, a
   partition that trips the bounded-staleness shed, and an epoch-fenced
   failover.

   Run with:  dune exec examples/replication.exe *)

let mk_store () =
  Pagestore.Store.create
    ~config:
      {
        Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = 1024;
        cfg_durability = Pagestore.Wal.Full;
      }
    Simdisk.Profile.ssd_raid0

let config =
  { Blsm.Config.default with Blsm.Config.c0_bytes = 1024 * 1024 }

let () =
  (* One seeded network; the primary serves the replication protocol on
     "west", the follower tails it from "east". *)
  let net = Simnet.create ~seed:2012 () in
  let primary = Blsm.Tree.create ~config (mk_store ()) in
  let server = Blsm.Repl_server.create primary in
  Blsm.Repl_server.attach server (Simnet.endpoint net "west");
  let follower =
    Blsm.Replication.follower ~config ~net ~name:"east" ~peer:"west"
      (mk_store ())
  in

  (* Live traffic on the primary; the follower tails the log. *)
  Blsm.Tree.put primary "user:alice" "sunnyvale";
  Blsm.Tree.put primary "user:bob" "bangalore";
  Blsm.Tree.apply_delta primary "user:alice" ";lastlogin=t1";
  (match Blsm.Replication.sync follower with
  | `Applied n -> Printf.printf "catch-up: applied %d log records\n" n
  | `Resynced | `Unreachable -> assert false);
  (match Blsm.Replication.read follower "user:alice" with
  | `Ok v ->
      Printf.printf "follower reads user:alice -> %s\n"
        (Option.value v ~default:"<missing>")
  | `Too_stale -> assert false);

  (* A lossy stretch: the supervisor retries with seeded backoff and the
     LSN guard keeps re-sent batches exactly-once. *)
  Simnet.schedule_drop net ~src:"east" ~dst:"west" ~after:1;
  Simnet.schedule_duplicate net ~src:"west" ~dst:"east" ~after:1;
  Blsm.Tree.put primary "user:erin" "reno";
  (match Blsm.Replication.sync follower with
  | `Applied n ->
      Printf.printf "lossy link: applied %d record(s), %d retries\n" n
        (Blsm.Replication.counters follower).Blsm.Replication.retries
  | `Resynced | `Unreachable -> assert false);

  (* The follower disconnects; the primary churns enough that merges
     truncate its log past the follower's position. Next contact falls
     back to a snapshot bootstrap (chunked over the same network). *)
  for i = 0 to 4_999 do
    Blsm.Tree.put primary
      (Printf.sprintf "event:%08d" i)
      (String.make 150 (Char.chr (97 + (i mod 26))))
  done;
  Blsm.Tree.flush primary;
  (match Blsm.Replication.sync follower with
  | `Resynced ->
      Printf.printf
        "follower fell behind (log truncated): bootstrapped a snapshot\n"
  | `Applied n -> Printf.printf "(caught up with %d records)\n" n
  | `Unreachable -> assert false);
  Printf.printf "follower has %d event rows after bootstrap\n"
    (List.length
       (Blsm.Tree.scan (Blsm.Replication.tree follower) "event:" 100_000));

  (* Incremental tailing resumes after the bootstrap. *)
  Blsm.Tree.put primary "user:carol" "tokyo";
  (match Blsm.Replication.sync follower with
  | `Applied n -> Printf.printf "tailing again: %d record(s)\n" n
  | `Resynced | `Unreachable -> assert false);

  (* Power-fail the follower: its position recovers with its data, so
     nothing is lost or double-applied. *)
  let follower = Blsm.Replication.crash_and_recover follower in
  Printf.printf "follower recovered at lsn %d, lag %d\n"
    (Blsm.Replication.applied_lsn follower)
    (Blsm.Replication.lag follower);

  (* A partition: writes pile up out of reach, the staleness lease
     expires, and the follower sheds reads instead of serving stale. *)
  Simnet.partition net "west" "east";
  Blsm.Tree.put primary "user:frank" "unreplicated";
  (match Blsm.Replication.sync follower with
  | `Unreachable -> Printf.printf "partitioned: primary unreachable\n"
  | `Applied _ | `Resynced -> assert false);
  Simnet.sleep net
    (config.Blsm.Config.repl.Blsm.Config.staleness_lease_us + 1_000);
  (match Blsm.Replication.read follower "user:alice" with
  | `Too_stale -> Printf.printf "lease expired: reads shed as too stale\n"
  | `Ok _ -> assert false);
  Simnet.heal net "west" "east";
  (match Blsm.Replication.sync follower with
  | `Applied n -> Printf.printf "healed: applied %d record(s)\n" n
  | `Resynced | `Unreachable -> assert false);

  (* Failover with epoch fencing: promote the follower, re-point the
     service at it one epoch up, and demote the old primary. The deposed
     node's first message carries the stale epoch and is fenced, so no
     split-brain write survives; it then bootstraps from the new primary. *)
  let deposed_epoch = Blsm.Repl_server.epoch server in
  let new_epoch = Blsm.Replication.epoch follower + 1 in
  let new_primary = Blsm.Replication.promote follower in
  Simnet.clear_handler (Simnet.endpoint net "west");
  Blsm.Repl_server.set_tree server new_primary;
  Blsm.Repl_server.set_epoch server new_epoch;
  Blsm.Repl_server.attach server (Simnet.endpoint net "east");
  let old_primary =
    Blsm.Replication.demote ~config ~net ~name:"west" ~peer:"east"
      ~epoch:deposed_epoch primary
  in
  Blsm.Tree.put new_primary "user:dave" "promoted-write";
  (match Blsm.Replication.sync old_primary with
  | `Resynced ->
      Printf.printf
        "failover: deposed primary fenced (%d reject(s)), rejoined at epoch %d\n"
        (Blsm.Repl_server.counters server).Blsm.Repl_server.fenced_rejects
        (Blsm.Replication.epoch old_primary)
  | `Applied _ | `Unreachable -> assert false);
  Printf.printf "after failover: carol=%s dave=%s\n"
    (Option.value (Blsm.Tree.get new_primary "user:carol") ~default:"<lost>")
    (Option.value (Blsm.Tree.get new_primary "user:dave") ~default:"<lost>")
