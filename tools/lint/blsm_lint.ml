(* blsm-lint command line.

   Usage: blsm_lint [--root DIR] [--baseline FILE] [--update-baseline]
                    [--effects] [--budget SECONDS] [DIR ...]

   Lints every .ml/.mli under the given directories (default: the
   configured scan set, lib/ bin/ bench/ tools/), prints findings as
   "file:line: [RULE] message" and exits non-zero if any survive the
   suppression attributes and the baseline.

   --effects dumps the interprocedural call graph and inferred effect
   signatures as byte-stable JSON instead of linting.

   --budget S is the analyzer's perf gate: measure wall-clock for the
   whole run and exit 1 if it exceeds S seconds.  The analysis is part
   of `dune runtest`; if it cannot stay fast it will get skipped, so
   the budget is enforced in CI like any other invariant. *)

let usage () =
  prerr_endline
    "usage: blsm_lint [--root DIR] [--baseline FILE] [--update-baseline] \
     [--effects] [--budget SECONDS] [DIR ...]";
  exit 2

(* Wall clock, not the simulated one: this times the analyzer itself.
   The result never reaches analysis output. *)
let now () = (Unix.gettimeofday [@lint.allow "D001"]) ()

let () =
  let root = ref "." in
  let baseline_path = ref None in
  let update = ref false in
  let effects = ref false in
  let budget = ref None in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--root" :: d :: rest ->
        root := d;
        parse rest
    | "--baseline" :: f :: rest ->
        baseline_path := Some f;
        parse rest
    | "--update-baseline" :: rest ->
        update := true;
        parse rest
    | "--effects" :: rest ->
        effects := true;
        parse rest
    | "--budget" :: s :: rest -> (
        match float_of_string_opt s with
        | Some b when b > 0.0 ->
            budget := Some b;
            parse rest
        | _ -> usage ())
    | ("--help" | "-h") :: _ -> usage ()
    | d :: rest when String.length d > 0 && d.[0] <> '-' ->
        dirs := d :: !dirs;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let config = Lint.Config.default in
  let dirs =
    if !dirs = [] then config.Lint.Config.scan_dirs else List.rev !dirs
  in
  let started = now () in
  let check_budget () =
    let elapsed = now () -. started in
    match !budget with
    | Some b when elapsed > b ->
        Printf.printf
          "blsm-lint: analysis took %.2fs, over the %.1fs budget; the \
           analyzer must stay fast enough to live inside `dune runtest`\n"
          elapsed b;
        exit 1
    | _ -> ()
  in
  if !effects then begin
    print_string (Lint.Runner.effects_json ~config ~root:!root dirs);
    check_budget ()
  end
  else
    let findings = Lint.Runner.run ~config ~root:!root dirs in
    match (!update, !baseline_path) with
    | true, Some path ->
        Lint.Baseline.save path findings;
        Printf.printf "blsm-lint: wrote %d finding(s) to %s\n"
          (List.length findings) path
    | true, None ->
        prerr_endline "blsm-lint: --update-baseline requires --baseline";
        exit 2
    | false, _ ->
        let baseline =
          match !baseline_path with
          | Some path -> Lint.Baseline.load path
          | None -> []
        in
        let live = Lint.Baseline.filter ~baseline findings in
        List.iter (fun f -> print_endline (Lint.Finding.to_string f)) live;
        if live <> [] then begin
          Printf.printf
            "blsm-lint: %d finding(s) (%d baselined); see DESIGN.md §10 \
             and §15 for the rules, [@lint.allow \"RULE\"] for per-site \
             suppression\n"
            (List.length live)
            (List.length findings - List.length live);
          exit 1
        end
        else begin
          check_budget ();
          Printf.printf "blsm-lint: clean (%d file(s) scanned in %s)\n"
            (List.length (Lint.Runner.collect_files ~root:!root dirs))
            (String.concat " " dirs)
        end
