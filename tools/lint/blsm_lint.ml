(* blsm-lint command line.

   Usage: blsm_lint [--root DIR] [--baseline FILE] [--update-baseline]
                    [DIR ...]

   Lints every .ml/.mli under the given directories (default: the
   configured scan set, lib/ bin/ bench/), prints findings as
   "file:line: [RULE] message" and exits non-zero if any survive the
   suppression attributes and the baseline. *)

let usage () =
  prerr_endline
    "usage: blsm_lint [--root DIR] [--baseline FILE] [--update-baseline] \
     [DIR ...]";
  exit 2

let () =
  let root = ref "." in
  let baseline_path = ref None in
  let update = ref false in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--root" :: d :: rest ->
        root := d;
        parse rest
    | "--baseline" :: f :: rest ->
        baseline_path := Some f;
        parse rest
    | "--update-baseline" :: rest ->
        update := true;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | d :: rest when String.length d > 0 && d.[0] <> '-' ->
        dirs := d :: !dirs;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let config = Lint.Config.default in
  let dirs =
    if !dirs = [] then config.Lint.Config.scan_dirs else List.rev !dirs
  in
  let findings = Lint.Runner.run ~config ~root:!root dirs in
  match (!update, !baseline_path) with
  | true, Some path ->
      Lint.Baseline.save path findings;
      Printf.printf "blsm-lint: wrote %d finding(s) to %s\n"
        (List.length findings) path
  | true, None ->
      prerr_endline "blsm-lint: --update-baseline requires --baseline";
      exit 2
  | false, _ ->
      let baseline =
        match !baseline_path with
        | Some path -> Lint.Baseline.load path
        | None -> []
      in
      let live = Lint.Baseline.filter ~baseline findings in
      List.iter
        (fun f -> print_endline (Lint.Finding.to_string f))
        live;
      if live <> [] then begin
        Printf.printf
          "blsm-lint: %d finding(s) (%d baselined); see DESIGN.md §10 \
           for the rules, [@lint.allow \"RULE\"] for per-site \
           suppression\n"
          (List.length live)
          (List.length findings - List.length live);
        exit 1
      end
      else
        Printf.printf "blsm-lint: clean (%d file(s) scanned in %s)\n"
          (List.length (Lint.Runner.collect_files ~root:!root dirs))
          (String.concat " " dirs)
