(* obs-smoke: end-to-end check of the observability layer.

   Runs a saturated spring-scheduler insert workload with tracing on and
   verifies the three contracts the tracing layer makes (ISSUE 3):

   1. attribution: for every write, the stall causes last_stall reports
      (merge1 + merge2 + hard) sum to the sampled stall_us within float
      rounding — the simulated clock only advances inside disk
      operations, so the quanta must tile the pacing window exactly;
   2. well-formedness: the Chrome trace_event document parses as JSON,
      has a traceEvents array of objects, and every event carries the
      mandatory ph/ts/pid/tid fields;
   3. determinism: two runs with the same seed produce byte-identical
      trace output (all timestamps come from the simulated clock).

   Exits nonzero with a message on the first violated contract, so
   `dune build @obs-smoke` doubles as a regression gate. *)

let failures = ref 0

let check name ok detail =
  if ok then Printf.printf "  ok   %s\n" name
  else begin
    incr failures;
    Printf.printf "  FAIL %s: %s\n" name detail
  end

(* ------------------------------------------------------------------ *)
(* Minimal recursive-descent JSON parser — enough to validate the trace
   document without pulling in a JSON dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              pos := !pos + 4;
              Buffer.add_char buf '?';
              go ()
          | Some c -> advance (); Buffer.add_char buf c; go ()
          | None -> fail "unterminated escape")
      | Some c -> advance (); Buffer.add_char buf c; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    if start = !pos then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Traced workload: saturated spring inserts into a tiny C0. *)

let ops = 2_500
let value_bytes = 512

type run_result = {
  trace : string;
  events : int;
  worst_err_us : float; (* max |merge1+merge2+hard - total| over all ops *)
  stalled_ops : int; (* ops with a nonzero pacing window *)
  hard_us : float;
}

let run_traced ~seed () =
  let store =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 1024;
          cfg_durability = Pagestore.Wal.Full;
        }
      Simdisk.Profile.ssd_raid0
  in
  let config =
    {
      Blsm.Config.default with
      Blsm.Config.c0_bytes = 64 * 1024;
      scheduler = Blsm.Config.Spring;
      snowshovel = true;
    }
  in
  let tree = Blsm.Tree.create ~config store in
  let tr = Pagestore.Store.trace store in
  let finish = Obs.Trace.enable_buffer tr ~format:Obs.Trace.Chrome in
  let prng = Repro_util.Prng.of_int seed in
  let worst = ref 0.0 in
  let stalled = ref 0 in
  let hard = ref 0.0 in
  for i = 0 to ops - 1 do
    Blsm.Tree.put tree
      (Repro_util.Keygen.key_of_id i)
      (Repro_util.Keygen.value prng value_bytes);
    let sb = Blsm.Tree.last_stall tree in
    let attributed =
      sb.Blsm.Tree.sb_merge1_us +. sb.Blsm.Tree.sb_merge2_us
      +. sb.Blsm.Tree.sb_hard_us
    in
    let err = Float.abs (attributed -. sb.Blsm.Tree.sb_total_us) in
    if err > !worst then worst := err;
    if sb.Blsm.Tree.sb_total_us > 0.0 then incr stalled;
    hard := !hard +. sb.Blsm.Tree.sb_hard_us;
    ignore i
  done;
  let events = Obs.Trace.events_emitted tr in
  let trace = finish () in
  {
    trace;
    events;
    worst_err_us = !worst;
    stalled_ops = !stalled;
    hard_us = !hard;
  }

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "obs-smoke: traced saturated spring inserts (%d ops)\n" ops;
  let r1 = run_traced ~seed:7 () in
  let r2 = run_traced ~seed:7 () in

  (* 1. stall attribution tiles the pacing window for every op *)
  check "attribution sums equal stall_us"
    (r1.worst_err_us <= 0.5)
    (Printf.sprintf "worst |attributed - total| = %.6f us" r1.worst_err_us);
  check "workload actually saturates the scheduler"
    (r1.stalled_ops > ops / 10)
    (Printf.sprintf "only %d/%d ops saw a pacing window" r1.stalled_ops ops);

  (* 2. the Chrome document is valid JSON with the expected shape *)
  (match parse_json r1.trace with
  | exception Bad_json m -> check "chrome trace parses as JSON" false m
  | Obj fields -> (
      check "chrome trace parses as JSON" true "";
      match List.assoc_opt "traceEvents" fields with
      | Some (Arr events) ->
          check "traceEvents length matches events_emitted"
            (List.length events = r1.events)
            (Printf.sprintf "%d events in JSON, %d emitted"
               (List.length events) r1.events);
          let well_formed =
            List.for_all
              (function
                | Obj e ->
                    List.mem_assoc "ph" e && List.mem_assoc "ts" e
                    && List.mem_assoc "pid" e && List.mem_assoc "tid" e
                    && List.mem_assoc "name" e
                | _ -> false)
              events
          in
          check "every event has ph/ts/pid/tid/name" well_formed
            "an event is missing a mandatory field";
          let has_cat c =
            List.exists
              (function
                | Obj e -> List.assoc_opt "cat" e = Some (Str c)
                | _ -> false)
              events
          in
          check "trace covers tree, scheduler and merge categories"
            (has_cat "tree" && has_cat "sched" && has_cat "merge")
            "missing a category"
      | _ -> check "traceEvents is an array" false "field missing or not array")
  | _ -> check "chrome trace parses as JSON" false "top level is not an object");

  (* 3. same seed => byte-identical trace *)
  check "same-seed runs are byte-identical"
    (String.equal r1.trace r2.trace)
    (Printf.sprintf "lengths %d vs %d" (String.length r1.trace)
       (String.length r2.trace));
  check "trace is non-trivial"
    (r1.events > ops)
    (Printf.sprintf "only %d events for %d ops" r1.events ops);

  Printf.printf
    "obs-smoke: %d events, %d/%d stalled ops, worst attribution error %.6f us, hard %.1f us\n"
    r1.events r1.stalled_ops ops r1.worst_err_us r1.hard_us;
  if !failures > 0 then begin
    Printf.printf "obs-smoke: %d FAILURES\n" !failures;
    exit 1
  end
  else print_endline "OBS_SMOKE_OK"
