(* repl-smoke: the replication determinism gate, attached to `dune
   runtest` via the `@repl-smoke` alias.

   For each seed it drives a two-node pair (primary + follower over
   Simnet) through the full degradation arc — clean shipping, message
   loss + duplication with retry/backoff, a partition that trips the
   bounded-staleness shed, then heal and reconvergence — and renders a
   textual report of every sync outcome, the link/replication counters,
   and the metrics registry.  Each seed runs twice from scratch; the two
   reports must be byte-identical, and the follower must end byte-equal
   to the primary.  Exit 1 on any divergence. *)

let mk_store () =
  Pagestore.Store.create
    ~config:
      {
        Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = 128;
        cfg_durability = Pagestore.Wal.Full;
      }
    Simdisk.Profile.ssd_raid0

let repl =
  {
    Blsm.Config.default_repl with
    Blsm.Config.req_timeout_us = 5_000;
    backoff_base_us = 500;
    backoff_cap_us = 4_000;
    max_attempts = 5;
    staleness_lease_us = 50_000;
  }

let config =
  {
    Blsm.Config.default with
    Blsm.Config.c0_bytes = 32 * 1024;
    size_ratio = Blsm.Config.Fixed 3.0;
    extent_pages = 8;
    repl;
  }

let run seed =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let net = Simnet.create ~seed () in
  let p = Blsm.Tree.create ~config (mk_store ()) in
  let server = Blsm.Repl_server.create p in
  Blsm.Repl_server.attach server (Simnet.endpoint net "primary");
  let f =
    Blsm.Replication.follower ~config ~net ~name:"follower" ~peer:"primary"
      (mk_store ())
  in
  let reg = Obs.Metrics.create () in
  Simnet.register_metrics reg net;
  Blsm.Repl_server.register_metrics reg server;
  Blsm.Replication.register_metrics reg (fun () -> f);
  let sync_tag () =
    match Blsm.Replication.sync f with
    | `Applied n -> Printf.sprintf "applied(%d)" n
    | `Resynced -> "resynced"
    | `Unreachable -> "unreachable"
  in
  (* phase 1: clean log shipping *)
  for i = 0 to 19 do
    Blsm.Tree.put p (Printf.sprintf "k%03d" i) (Printf.sprintf "v%d" (i * 7))
  done;
  line "phase1 sync=%s lag=%d" (sync_tag ()) (Blsm.Replication.lag f);
  (* phase 2: message loss + duplication; the supervisor retries and the
     LSN guard keeps application exactly-once *)
  Simnet.schedule_drop net ~src:"follower" ~dst:"primary" ~after:1;
  Simnet.schedule_duplicate net ~src:"primary" ~dst:"follower" ~after:1;
  for i = 0 to 9 do
    Blsm.Tree.apply_delta p (Printf.sprintf "k%03d" i) "+d"
  done;
  line "phase2 sync=%s" (sync_tag ());
  (* phase 3: partition; writes pile up on the primary, the follower
     goes unreachable, the staleness lease expires, reads shed *)
  Simnet.partition net "primary" "follower";
  for i = 20 to 29 do
    Blsm.Tree.put p (Printf.sprintf "k%03d" i) "partitioned"
  done;
  line "phase3 sync=%s" (sync_tag ());
  Simnet.sleep net (repl.Blsm.Config.staleness_lease_us + 1_000);
  (match Blsm.Replication.read f "k005" with
  | `Too_stale -> line "phase3 read=too_stale stale=%b" (Blsm.Replication.is_stale f)
  | `Ok _ -> line "phase3 read=SERVED-WHILE-STALE");
  (* phase 4: heal and reconverge *)
  Simnet.heal net "primary" "follower";
  line "phase4 sync=%s lag=%d" (sync_tag ()) (Blsm.Replication.lag f);
  (match Blsm.Replication.read f "k025" with
  | `Ok (Some "partitioned") -> line "phase4 read=fresh"
  | `Ok _ -> line "phase4 read=WRONG-VALUE"
  | `Too_stale -> line "phase4 read=STILL-STALE");
  let rows t = Blsm.Tree.scan t "\001" 1_000_000 in
  let converged = rows p = rows (Blsm.Replication.tree f) in
  line "converged=%b rows=%d" converged (List.length (rows p));
  let c = Simnet.counters net in
  line "net sent=%d delivered=%d dropped=%d duplicated=%d partition_drops=%d timeouts=%d strays=%d"
    c.Simnet.sent c.Simnet.delivered c.Simnet.dropped c.Simnet.duplicated
    c.Simnet.partition_drops c.Simnet.call_timeouts c.Simnet.strays;
  let rc = Blsm.Replication.counters f in
  line "repl rpcs=%d retries=%d timeouts=%d applied=%d dup_skipped=%d sheds=%d"
    rc.Blsm.Replication.rpcs rc.Blsm.Replication.retries
    rc.Blsm.Replication.timeouts rc.Blsm.Replication.records_applied
    rc.Blsm.Replication.duplicates_skipped rc.Blsm.Replication.stale_sheds;
  Buffer.add_string buf (Obs.Metrics.dump reg);
  (converged, Buffer.contents buf)

let () =
  let failed = ref 0 in
  List.iter
    (fun seed ->
      let c1, r1 = run seed in
      let c2, r2 = run seed in
      if not (c1 && c2) then begin
        incr failed;
        Printf.printf "FAIL seed=%d: follower did not converge\n%s" seed r1
      end;
      if r1 <> r2 then begin
        incr failed;
        Printf.printf
          "FAIL seed=%d: same-seed reports differ (%d vs %d bytes)\n" seed
          (String.length r1) (String.length r2)
      end;
      if c1 && r1 = r2 then
        Printf.printf "repl-smoke: seed %d ok (%d bytes, byte-identical)\n%!"
          seed (String.length r1))
    [ 11; 23; 47 ];
  if !failed > 0 then exit 1;
  print_endline "REPL_SMOKE_OK"
