(* DST smoke: a deterministic sweep of seeded simulation runs across
   every driver, used both as the `@dst-smoke` gate (fast: runs in
   `dune runtest`) and, with --seeds/--steps, as a soak.

   For each (driver, seed) the plan is generated, executed against a
   fresh engine with the full invariant battery, and — for the first
   seed of each driver — executed a second time from scratch to assert
   the two reports are byte-identical (the determinism contract that
   makes seed replay meaningful). Any violation prints the failing
   seed, shrinks it, and writes a repro JSON under dst/. *)

let drivers =
  [ "blsm"; "blsm-gear"; "blsm-naive"; "partitioned"; "btree"; "leveldb";
    "replicated"; "policy-tiered"; "policy-leveled"; "policy-lazy-leveled";
    "policy-partial" ]

let () =
  let seeds = ref 5 in
  let steps = ref 0 in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | "--seeds" :: n :: rest ->
        seeds := int_of_string n;
        parse rest
    | "--steps" :: n :: rest ->
        steps := int_of_string n;
        parse rest
    | _ :: rest -> parse rest
    | [] -> ()
  in
  parse args;
  let params =
    if !steps > 0 then
      Some { Dst.Plan.default_params with Dst.Plan.n_steps = !steps }
    else None
  in
  let total = ref 0 in
  let failed = ref 0 in
  let crashes = ref 0 in
  let rot_runs = ref 0 in
  List.iter
    (fun driver ->
      for s = 1 to !seeds do
        let seed = (s * 37) + 11 in
        incr total;
        let plan, outcome = Dst.run_seed ?params ~driver_name:driver ~seed () in
        crashes := !crashes + outcome.Dst.Interp.crashes;
        if outcome.Dst.Interp.rot then incr rot_runs;
        if not outcome.Dst.Interp.ok then begin
          incr failed;
          Printf.printf "FAIL driver=%s seed=%d violations:\n" driver seed;
          List.iter (Printf.printf "  %s\n") outcome.Dst.Interp.violations;
          let small, st = Dst.shrink_failing plan in
          let path =
            Printf.sprintf "dst/repro_%s_seed%d.json" driver seed
          in
          (try Unix.mkdir "dst" 0o755 with Unix.Unix_error (EEXIST, _, _) -> ());
          Dst.Repro.save path
            { small with Dst.Plan.note =
                Printf.sprintf "smoke driver=%s seed=%d" driver seed };
          Printf.printf
            "  shrunk %d -> %d steps (%d candidates); repro: %s\n"
            (List.length plan.Dst.Plan.steps)
            (List.length small.Dst.Plan.steps)
            st.Dst.Shrink.candidates path
        end;
        (* determinism gate: first seed of each driver runs twice *)
        if s = 1 then begin
          let _, again = Dst.run_seed ?params ~driver_name:driver ~seed () in
          if again.Dst.Interp.report <> outcome.Dst.Interp.report then begin
            incr failed;
            Printf.printf
              "FAIL driver=%s seed=%d: same-seed reports differ (%d vs %d bytes)\n"
              driver seed
              (String.length outcome.Dst.Interp.report)
              (String.length again.Dst.Interp.report)
          end
        end
      done;
      Printf.printf "dst-smoke: %-12s ok (%d seeds)\n%!" driver !seeds)
    drivers;
  Printf.printf
    "dst-smoke: %d runs, %d crashes recovered, %d rot runs, %d failures\n"
    !total !crashes !rot_runs !failed;
  if !failed > 0 then exit 1;
  print_endline "DST_SMOKE_OK"
