(* Differential testing: the same operation sequence driven through every
   engine (bLSM spring/gear/naive, partitioned bLSM, B-Tree, LevelDB) must
   produce identical results. The reference implementation is the DST
   harness's in-memory oracle ({!Dst.Oracle}) — the same model the
   simulation interpreter checks against — so a disagreement pinpoints
   the lying engine directly instead of only flagging a pair mismatch.

   Engines are driven through {!Dst.Driver}, which exposes the full
   surface uniformly: point ops, deltas, RMW, range scans, and
   write_batch (atomic where the engine supports it, emulated per-item
   where it does not — the result must agree either way). *)

let driver_names = [ "blsm"; "blsm-gear"; "partitioned"; "btree"; "leveldb" ]

type op =
  | Put of string * string
  | Delete of string
  | Delta of string * string
  | Rmw of string
  | Ifabsent of string * string
  | Get of string
  | Scan of string * int
  | Batch of Dst.Plan.batch_item list

(* Boundary-adjacent keys get extra traffic so partitioned routing and
   cross-partition scans/batches are exercised on every seed. *)
let gen_key prng =
  if Repro_util.Prng.int prng 8 = 0 then
    [| "key099"; "key100"; "key101"; "key199"; "key200"; "key201" |].(Repro_util.Prng.int prng 6)
  else Printf.sprintf "key%03d" (Repro_util.Prng.int prng 300)

let gen_ops seed n =
  let prng = Repro_util.Prng.of_int seed in
  List.init n (fun i ->
      let key = gen_key prng in
      match Repro_util.Prng.int prng 13 with
      | 0 | 1 | 2 | 3 -> Put (key, Printf.sprintf "v%d-%s" i (String.make 40 'd'))
      | 4 -> Delete key
      | 5 -> Delta (key, Printf.sprintf "+%d" i)
      | 6 -> Rmw key
      | 7 -> Ifabsent (key, Printf.sprintf "ia%d" i)
      | 8 | 9 -> Get key
      | 10 | 11 -> Scan (key, 1 + Repro_util.Prng.int prng 8)
      | _ ->
          Batch
            (List.init
               (1 + Repro_util.Prng.int prng 5)
               (fun j ->
                 let k = gen_key prng in
                 if Repro_util.Prng.int prng 5 = 0 then Dst.Plan.B_del k
                 else Dst.Plan.B_put (k, Printf.sprintf "b%d.%d" i j))))

let entry_of_item = function
  | Dst.Plan.B_put (k, v) -> (k, Kv.Entry.Base v)
  | Dst.Plan.B_del k -> (k, Kv.Entry.Tombstone)

(* Apply one op to a driver; return an observation string for diffing. *)
let apply (d : Dst.Driver.t) op =
  match op with
  | Put (k, v) ->
      d.Dst.Driver.put k v;
      ""
  | Delete k ->
      d.Dst.Driver.delete k;
      ""
  | Delta (k, dl) ->
      d.Dst.Driver.apply_delta k dl;
      ""
  | Rmw k ->
      d.Dst.Driver.rmw k "!";
      ""
  | Ifabsent (k, v) -> string_of_bool (d.Dst.Driver.insert_if_absent k v)
  | Get k -> Option.value (d.Dst.Driver.get k) ~default:"<none>"
  | Scan (k, n) ->
      d.Dst.Driver.scan k n
      |> List.map (fun (k, v) -> k ^ "=" ^ v)
      |> String.concat ";"
  | Batch items ->
      let entries = List.map entry_of_item items in
      if d.Dst.Driver.caps.Dst.Plan.c_batch_atomic then
        d.Dst.Driver.write_batch entries
      else
        List.iter
          (fun (k, e) ->
            match e with
            | Kv.Entry.Base v -> d.Dst.Driver.put k v
            | Kv.Entry.Tombstone -> d.Dst.Driver.delete k
            | Kv.Entry.Delta ds -> List.iter (d.Dst.Driver.apply_delta k) ds)
        entries;
      ""

(* Apply the same op to the oracle; return the matching observation. *)
let apply_oracle o op =
  match op with
  | Put (k, v) ->
      Dst.Oracle.put o k v;
      ""
  | Delete k ->
      Dst.Oracle.delete o k;
      ""
  | Delta (k, dl) ->
      Dst.Oracle.delta o k dl;
      ""
  | Rmw k ->
      Dst.Oracle.read_modify_write o k (fun v ->
          Option.value v ~default:"" ^ "!");
      ""
  | Ifabsent (k, v) -> string_of_bool (Dst.Oracle.insert_if_absent o k v)
  | Get k -> Option.value (Dst.Oracle.get o k) ~default:"<none>"
  | Scan (k, n) ->
      Dst.Oracle.scan o k n
      |> List.map (fun (k, v) -> k ^ "=" ^ v)
      |> String.concat ";"
  | Batch items ->
      List.iter
        (fun it ->
          let k, e = entry_of_item it in
          Dst.Oracle.apply_entry o k e)
        items;
      ""

let run_differential seed n =
  let ops = gen_ops seed n in
  let oracle = Dst.Oracle.create () in
  let expected = List.map (apply_oracle oracle) ops in
  List.iter
    (fun name ->
      let d = Dst.Driver.make_exn name ~seed () in
      List.iteri
        (fun i (op, want) ->
          let got = apply d op in
          if got <> want then
            Alcotest.failf "op %d on %s: engine=%S oracle=%S" i name got want)
        (List.combine ops expected);
      d.Dst.Driver.maintenance ();
      let final = d.Dst.Driver.scan "" 10_000 in
      if final <> Dst.Oracle.bindings oracle then
        Alcotest.failf "final scan disagrees with oracle on %s (%d vs %d rows)"
          name (List.length final)
          (Dst.Oracle.cardinal oracle))
    driver_names

let test_seed s () = run_differential s 1500

let prop_differential =
  QCheck.Test.make ~name:"engines agree with the DST oracle" ~count:8
    QCheck.small_int (fun seed ->
      run_differential (seed + 1000) 600;
      true)

(* Focused property: batches (atomic or emulated) land identically, with
   a range scan after every batch so partial application would show. *)
let prop_write_batch =
  QCheck.Test.make ~name:"write_batch agrees across engines and oracle"
    ~count:8 QCheck.small_int (fun seed ->
      let prng = Repro_util.Prng.of_int (seed lxor 0xBA7C4) in
      let ops =
        List.concat
          (List.init 60 (fun i ->
               [
                 Batch
                   (List.init
                      (1 + Repro_util.Prng.int prng 6)
                      (fun j ->
                        let k = gen_key prng in
                        if Repro_util.Prng.int prng 4 = 0 then Dst.Plan.B_del k
                        else Dst.Plan.B_put (k, Printf.sprintf "b%d.%d" i j)));
                 Scan (gen_key prng, 1 + Repro_util.Prng.int prng 10);
               ]))
      in
      let oracle = Dst.Oracle.create () in
      let expected = List.map (apply_oracle oracle) ops in
      List.iter
        (fun name ->
          let d = Dst.Driver.make_exn name ~seed () in
          List.iteri
            (fun i (op, want) ->
              let got = apply d op in
              if got <> want then
                Alcotest.failf "batch op %d on %s: engine=%S oracle=%S" i name
                  got want)
            (List.combine ops expected))
        driver_names;
      true)

(* Focused property: scans from random (often mid-range, often boundary)
   starting points agree with the oracle at every prefix length. *)
let prop_range_scans =
  QCheck.Test.make ~name:"range scans agree with the DST oracle" ~count:8
    QCheck.small_int (fun seed ->
      let prng = Repro_util.Prng.of_int (seed lxor 0x5CA9) in
      let oracle = Dst.Oracle.create () in
      let keys = List.init 120 (fun _ -> gen_key prng) in
      let drivers =
        List.map (fun n -> (n, Dst.Driver.make_exn n ~seed ())) driver_names
      in
      List.iteri
        (fun i k ->
          let v = Printf.sprintf "s%d" i in
          Dst.Oracle.put oracle k v;
          List.iter (fun (_, d) -> d.Dst.Driver.put k v) drivers)
        keys;
      for _ = 1 to 40 do
        let start = gen_key prng in
        let n = 1 + Repro_util.Prng.int prng 15 in
        let want = Dst.Oracle.scan oracle start n in
        List.iter
          (fun (name, d) ->
            let got = d.Dst.Driver.scan start n in
            if got <> want then
              Alcotest.failf "scan %S %d on %s: %d rows vs oracle %d" start n
                name (List.length got) (List.length want))
          drivers
      done;
      true)

let () =
  Alcotest.run "differential"
    [
      ( "engines",
        [
          Alcotest.test_case "seed 1" `Quick (test_seed 1);
          Alcotest.test_case "seed 2" `Quick (test_seed 2);
          Alcotest.test_case "seed 3" `Quick (test_seed 3);
          QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_write_batch;
          QCheck_alcotest.to_alcotest prop_range_scans;
        ] );
    ]
