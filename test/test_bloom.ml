(* Bloom filter tests: the no-false-negative guarantee (property), the <1%
   false-positive target at 10 bits/item (§3.1), sizing, serialization. *)

let check = Alcotest.check

let test_empty_contains_nothing () =
  let b = Bloom.create ~expected_items:100 () in
  for i = 0 to 99 do
    if Bloom.mem b (string_of_int i) then Alcotest.fail "empty filter claims membership"
  done

let test_added_keys_found () =
  let b = Bloom.create ~expected_items:1000 () in
  for i = 0 to 999 do
    Bloom.add b (Printf.sprintf "key%06d" i)
  done;
  for i = 0 to 999 do
    if not (Bloom.mem b (Printf.sprintf "key%06d" i)) then
      Alcotest.failf "false negative for key%06d" i
  done

let test_fp_rate_below_target () =
  let n = 20_000 in
  let b = Bloom.create ~expected_items:n () in
  for i = 0 to n - 1 do
    Bloom.add b (Printf.sprintf "present%08d" i)
  done;
  let fps = ref 0 in
  let probes = 50_000 in
  for i = 0 to probes - 1 do
    if Bloom.mem b (Printf.sprintf "absent%08d" i) then incr fps
  done;
  let rate = float_of_int !fps /. float_of_int probes in
  (* paper target: 1% at 10 bits/item; allow 1.5% slack for hash variance *)
  if rate > 0.015 then Alcotest.failf "false positive rate %.4f > 0.015" rate;
  if Bloom.expected_fp_rate b > 0.012 then
    Alcotest.failf "model fp rate %.4f > 0.012" (Bloom.expected_fp_rate b)

let test_sizing () =
  let b = Bloom.create ~expected_items:1000 ~bits_per_item:10 () in
  (* 10 bits/item = 1.25 bytes/item, the paper's memory overhead figure *)
  check Alcotest.int "bytes" 1250 (Bloom.size_bytes b)

let test_serialization_roundtrip () =
  let b = Bloom.create ~expected_items:500 () in
  for i = 0 to 499 do
    Bloom.add b (string_of_int i)
  done;
  let b' = Bloom.of_string (Bloom.to_string b) in
  check Alcotest.int "inserted preserved" 500 (Bloom.inserted b');
  for i = 0 to 499 do
    if not (Bloom.mem b' (string_of_int i)) then Alcotest.fail "lost key"
  done

(* ------------------------------------------------------------------ *)
(* Blocked (cache-line) layout *)

let test_blocked_membership () =
  let b = Bloom.create ~kind:Bloom.Blocked ~expected_items:1000 () in
  check Alcotest.bool "kind" true (Bloom.kind b = Bloom.Blocked);
  for i = 0 to 999 do
    Bloom.add b (Printf.sprintf "key%06d" i)
  done;
  for i = 0 to 999 do
    if not (Bloom.mem b (Printf.sprintf "key%06d" i)) then
      Alcotest.failf "blocked false negative for key%06d" i
  done

let test_blocked_sizing_block_multiple () =
  let b = Bloom.create ~kind:Bloom.Blocked ~expected_items:1000 ~bits_per_item:10 () in
  let bits = Bloom.size_bytes b * 8 in
  check Alcotest.int "whole blocks" 0 (bits mod Bloom.block_bits);
  if bits < 10 * 1000 then Alcotest.fail "blocked filter under-sized"

let test_blocked_fp_within_2x_standard () =
  (* Same keys, same bits-per-key budget: the blocked layout pays only a
     block-load-variance penalty, bounded well under 2x the standard
     filter's measured false-positive count. Hashing is deterministic, so
     these counts are exact, not statistical. *)
  let n = 20_000 and probes = 50_000 in
  let std = Bloom.create ~expected_items:n () in
  let blk = Bloom.create ~kind:Bloom.Blocked ~expected_items:n () in
  for i = 0 to n - 1 do
    let k = Printf.sprintf "present%08d" i in
    Bloom.add std k;
    Bloom.add blk k
  done;
  let count b =
    let fps = ref 0 in
    for i = 0 to probes - 1 do
      if Bloom.mem b (Printf.sprintf "absent%08d" i) then incr fps
    done;
    !fps
  in
  let std_fps = count std and blk_fps = count blk in
  if blk_fps > 2 * std_fps then
    Alcotest.failf "blocked fp count %d > 2x standard %d" blk_fps std_fps;
  (* and it is still a working filter: below the paper's 1.5%% slack *)
  let rate = float_of_int blk_fps /. float_of_int probes in
  if rate > 0.015 then Alcotest.failf "blocked fp rate %.4f > 0.015" rate

let test_blocked_serialization_roundtrip () =
  let b = Bloom.create ~kind:Bloom.Blocked ~expected_items:500 () in
  for i = 0 to 499 do
    Bloom.add b (string_of_int i)
  done;
  let s = Bloom.to_string b in
  check Alcotest.char "blocked marker" '\000' s.[0];
  let b' = Bloom.of_string s in
  check Alcotest.bool "kind preserved" true (Bloom.kind b' = Bloom.Blocked);
  check Alcotest.int "inserted preserved" 500 (Bloom.inserted b');
  for i = 0 to 499 do
    if not (Bloom.mem b' (string_of_int i)) then Alcotest.fail "lost key"
  done;
  (* standard serialization stays marker-free (seed byte-compat) *)
  let std = Bloom.create ~expected_items:500 () in
  Bloom.add std "k";
  if (Bloom.to_string std).[0] = '\000' then
    Alcotest.fail "standard encoding gained a marker byte"

let prop_blocked_no_false_negatives =
  QCheck.Test.make ~name:"blocked: no false negatives" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) string_small)
    (fun keys ->
      let b =
        Bloom.create ~kind:Bloom.Blocked ~expected_items:(List.length keys) ()
      in
      List.iter (Bloom.add b) keys;
      List.for_all (Bloom.mem b) keys)

let prop_blocked_fp_bounded =
  (* At equal bits/key over varying key populations, the blocked filter's
     measured false-positive count stays within 2x of the standard one
     (small additive slack absorbs tiny-count quantization). *)
  QCheck.Test.make ~name:"blocked: fp within 2x of standard" ~count:10
    QCheck.(int_range 0 1000)
    (fun salt ->
      let n = 5000 and probes = 10_000 in
      let std = Bloom.create ~expected_items:n () in
      let blk = Bloom.create ~kind:Bloom.Blocked ~expected_items:n () in
      for i = 0 to n - 1 do
        let k = Printf.sprintf "s%d-%06d" salt i in
        Bloom.add std k;
        Bloom.add blk k
      done;
      let count b =
        let fps = ref 0 in
        for i = 0 to probes - 1 do
          if Bloom.mem b (Printf.sprintf "a%d-%06d" salt i) then incr fps
        done;
        !fps
      in
      count blk <= (2 * count std) + 20)

let prop_no_false_negatives =
  QCheck.Test.make ~name:"no false negatives" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) string_small)
    (fun keys ->
      let b = Bloom.create ~expected_items:(List.length keys) () in
      List.iter (Bloom.add b) keys;
      List.for_all (Bloom.mem b) keys)

let prop_monotone_under_more_adds =
  (* adding more keys never removes membership: bits only go 0 -> 1 *)
  QCheck.Test.make ~name:"monotone membership" ~count:100
    QCheck.(pair (list_of_size Gen.(1 -- 50) string_small) (list_of_size Gen.(1 -- 50) string_small))
    (fun (first, second) ->
      let b = Bloom.create ~expected_items:100 () in
      List.iter (Bloom.add b) first;
      let ok_before = List.for_all (Bloom.mem b) first in
      List.iter (Bloom.add b) second;
      ok_before && List.for_all (Bloom.mem b) first)

let () =
  Alcotest.run "bloom"
    [
      ( "bloom",
        [
          Alcotest.test_case "empty" `Quick test_empty_contains_nothing;
          Alcotest.test_case "membership" `Quick test_added_keys_found;
          Alcotest.test_case "fp rate" `Quick test_fp_rate_below_target;
          Alcotest.test_case "sizing" `Quick test_sizing;
          Alcotest.test_case "serialization" `Quick test_serialization_roundtrip;
          QCheck_alcotest.to_alcotest prop_no_false_negatives;
          QCheck_alcotest.to_alcotest prop_monotone_under_more_adds;
        ] );
      ( "blocked",
        [
          Alcotest.test_case "membership" `Quick test_blocked_membership;
          Alcotest.test_case "sizing" `Quick test_blocked_sizing_block_multiple;
          Alcotest.test_case "fp within 2x" `Quick test_blocked_fp_within_2x_standard;
          Alcotest.test_case "serialization" `Quick test_blocked_serialization_roundtrip;
          QCheck_alcotest.to_alcotest prop_blocked_no_false_negatives;
          QCheck_alcotest.to_alcotest prop_blocked_fp_bounded;
        ] );
    ]
