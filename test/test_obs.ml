(* Tests for lib/obs (metrics registry, event tracing) and the tree's
   stall attribution: registry dump formats, duplicate rejection, prefix
   filtering; trace sinks, zero-cost-when-disabled, determinism; and the
   ISSUE-3 acceptance property that for a saturated spring-scheduler run
   the attributed stall causes sum to stall_us for every operation. *)

let check = Alcotest.check

(* substring test (no Str dependency) *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* -------------------------------------------------------------------- *)
(* Metrics registry *)

let test_registry_dump_text () =
  let reg = Obs.Metrics.create () in
  let n = ref 0 in
  Obs.Metrics.counter reg "b.count" ~help:"ops" (fun () -> !n);
  Obs.Metrics.gauge reg "a.fill" ~help:"fraction" (fun () -> 0.25);
  n := 41;
  incr n;
  check Alcotest.string "sorted name value lines"
    "a.fill 0.250\nb.count 42\n" (Obs.Metrics.dump reg)

let test_registry_samples_at_dump_time () =
  let reg = Obs.Metrics.create () in
  let n = ref 0 in
  Obs.Metrics.counter reg "x" ~help:"" (fun () -> !n);
  let before = Obs.Metrics.dump reg in
  n := 7;
  let after = Obs.Metrics.dump reg in
  check Alcotest.string "before" "x 0\n" before;
  check Alcotest.string "after" "x 7\n" after

let test_registry_histogram_expansion () =
  let reg = Obs.Metrics.create () in
  let h = Repro_util.Histogram.create () in
  List.iter (fun v -> Repro_util.Histogram.add h v) [ 1; 2; 3; 4; 100 ];
  Obs.Metrics.histogram reg "lat" ~help:"" h;
  let out = Obs.Metrics.dump reg in
  List.iter
    (fun field ->
      if not (contains out field)
      then Alcotest.failf "missing %s in %S" field out)
    [ "lat.count 5"; "lat.mean"; "lat.p50"; "lat.p99"; "lat.p999"; "lat.max" ]

let test_registry_prefix_filter () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.counter reg "tree.puts" ~help:"" (fun () -> 1);
  Obs.Metrics.counter reg "disk.seeks" ~help:"" (fun () -> 2);
  Obs.Metrics.counter reg "tree.gets" ~help:"" (fun () -> 3);
  check Alcotest.string "tree only" "tree.gets 3\ntree.puts 1\n"
    (Obs.Metrics.dump ~prefix:"tree." reg);
  check Alcotest.string "disk only" "disk.seeks 2\n"
    (Obs.Metrics.dump ~prefix:"disk." reg)

let test_registry_duplicate_rejected () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.counter reg "dup" ~help:"" (fun () -> 0);
  match Obs.Metrics.gauge reg "dup" ~help:"" (fun () -> 0.0) with
  | () -> Alcotest.fail "duplicate name accepted"
  | exception Invalid_argument _ -> ()

let test_registry_json_shape () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.counter reg "c" ~help:"" (fun () -> 3);
  Obs.Metrics.gauge reg "g" ~help:"" (fun () -> 1.5);
  let h = Repro_util.Histogram.create () in
  Repro_util.Histogram.add h 10;
  Obs.Metrics.histogram reg "h" ~help:"" h;
  let out = Obs.Metrics.dump_json reg in
  List.iter
    (fun frag ->
      if not (contains out frag) then
        Alcotest.failf "missing %s in %S" frag out)
    [ "\"c\": 3"; "\"g\": 1.500"; "\"h\": {"; "\"count\": 1" ];
  check Alcotest.bool "object delimited" true
    (String.length out > 2 && out.[0] = '{')

(* -------------------------------------------------------------------- *)
(* Trace sinks *)

let test_trace_disabled_is_noop () =
  let tr = Obs.Trace.create () in
  check Alcotest.bool "disabled" false (Obs.Trace.enabled tr);
  Obs.Trace.instant tr ~cat:"t" ~name:"e" ~args:[];
  Obs.Trace.complete tr ~cat:"t" ~name:"s" ~ts_us:0.0 ~dur_us:1.0 ~args:[];
  check Alcotest.int "nothing emitted" 0 (Obs.Trace.events_emitted tr)

let test_trace_chrome_buffer () =
  let clock = ref 100.0 in
  let tr = Obs.Trace.create ~now:(fun () -> !clock) () in
  let finish = Obs.Trace.enable_buffer tr ~format:Obs.Trace.Chrome in
  check Alcotest.bool "enabled" true (Obs.Trace.enabled tr);
  Obs.Trace.instant tr ~cat:"c" ~name:"tick"
    ~args:[ ("n", Obs.Trace.I 1); ("ok", Obs.Trace.B true) ];
  clock := 250.0;
  Obs.Trace.complete tr ~cat:"c" ~name:"span" ~ts_us:100.0 ~dur_us:150.0
    ~args:[ ("f", Obs.Trace.F 1.5); ("s", Obs.Trace.S "x\"y") ];
  let doc = finish () in
  check Alcotest.bool "disabled after finish" false (Obs.Trace.enabled tr);
  check Alcotest.int "two events" 2 (Obs.Trace.events_emitted tr);
  let has frag = contains doc frag in
  List.iter
    (fun frag ->
      if not (has frag) then Alcotest.failf "missing %s in %S" frag doc)
    [
      "{\"traceEvents\":[";
      "\"ph\":\"i\"";
      "\"name\":\"tick\"";
      "\"ts\":100.000";
      "\"ph\":\"X\"";
      "\"dur\":150.000";
      "\"s\":\"x\\\"y\"";
    ]

let test_trace_jsonl_lines () =
  let tr = Obs.Trace.create () in
  let finish = Obs.Trace.enable_buffer tr ~format:Obs.Trace.Jsonl in
  for i = 1 to 3 do
    Obs.Trace.instant tr ~cat:"c" ~name:"e" ~args:[ ("i", Obs.Trace.I i) ]
  done;
  let doc = finish () in
  let lines =
    String.split_on_char '\n' doc |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one object per line" 3 (List.length lines);
  List.iter
    (fun l ->
      if not (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}')
      then Alcotest.failf "line not an object: %S" l)
    lines

let test_trace_file_sink () =
  let path = Filename.temp_file "obs_test" ".trace.json" in
  let tr = Obs.Trace.create () in
  Obs.Trace.enable_file tr ~format:Obs.Trace.Chrome path;
  Obs.Trace.instant tr ~cat:"c" ~name:"e" ~args:[];
  Obs.Trace.disable tr;
  let doc = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  check Alcotest.bool "has header" true
    (contains doc "{\"traceEvents\":[");
  check Alcotest.bool "has footer" true
    (contains doc "]}")

(* -------------------------------------------------------------------- *)
(* Tree integration: attribution and determinism *)

let mk_tree ?(scheduler = Blsm.Config.Spring) ?(c0_kb = 64) () =
  let store =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 1024;
          cfg_durability = Pagestore.Wal.Full;
        }
      Simdisk.Profile.ssd_raid0
  in
  Blsm.Tree.create
    ~config:
      {
        Blsm.Config.default with
        Blsm.Config.c0_bytes = c0_kb * 1024;
        scheduler;
        snowshovel = scheduler <> Blsm.Config.Gear;
      }
    store

let saturated_run ?scheduler ~ops () =
  let tree = mk_tree ?scheduler () in
  let prng = Repro_util.Prng.of_int 11 in
  let worst = ref 0.0 in
  for i = 0 to ops - 1 do
    Blsm.Tree.put tree
      (Repro_util.Keygen.key_of_id i)
      (Repro_util.Keygen.value prng 512);
    let sb = Blsm.Tree.last_stall tree in
    let attributed =
      sb.Blsm.Tree.sb_merge1_us +. sb.Blsm.Tree.sb_merge2_us
      +. sb.Blsm.Tree.sb_hard_us
    in
    worst :=
      Float.max !worst (Float.abs (attributed -. sb.Blsm.Tree.sb_total_us))
  done;
  (tree, !worst)

let test_attribution_sums_spring () =
  let tree, worst = saturated_run ~ops:2_000 () in
  if worst > 0.5 then
    Alcotest.failf "worst attribution error %.6f us over 0.5" worst;
  let s = Blsm.Tree.stats tree in
  check Alcotest.bool "spring run paced merges" true (s.stall_merge1_us > 0.0);
  check Alcotest.bool "wal time attributed" true (s.wal_us > 0.0)

let test_attribution_naive_hard_stalls () =
  let tree, worst =
    saturated_run ~scheduler:Blsm.Config.Naive ~ops:2_000 ()
  in
  if worst > 0.5 then
    Alcotest.failf "worst attribution error %.6f us over 0.5" worst;
  let s = Blsm.Tree.stats tree in
  check Alcotest.bool "naive run hard-stalled" true (s.hard_stalls > 0);
  check Alcotest.bool "hard time attributed" true (s.stall_hard_us > 0.0)

let test_recovery_time_attributed () =
  let tree = mk_tree () in
  for i = 0 to 200 do
    Blsm.Tree.put tree (Repro_util.Keygen.key_of_id i) (String.make 100 'v')
  done;
  let fresh = Blsm.Tree.crash_and_recover tree in
  check Alcotest.bool "recovery_us > 0" true
    ((Blsm.Tree.stats fresh).recovery_us > 0.0)

let traced_run ~seed ~ops =
  let tree = mk_tree () in
  let tr = Pagestore.Store.trace (Blsm.Tree.store tree) in
  let finish = Obs.Trace.enable_buffer tr ~format:Obs.Trace.Chrome in
  let prng = Repro_util.Prng.of_int seed in
  for i = 0 to ops - 1 do
    (* per-op sizes drawn from the seed so distinct seeds give distinct
       timings (value *content* alone never reaches the trace) *)
    Blsm.Tree.put tree
      (Repro_util.Keygen.key_of_id i)
      (Repro_util.Keygen.value prng (64 + Repro_util.Prng.int prng 256))
  done;
  finish ()

let test_trace_deterministic () =
  let a = traced_run ~seed:5 ~ops:800 in
  let b = traced_run ~seed:5 ~ops:800 in
  check Alcotest.bool "byte-identical same-seed traces" true (String.equal a b);
  let c = traced_run ~seed:6 ~ops:800 in
  check Alcotest.bool "different seed differs" false (String.equal a c)

let test_tree_metrics_registry () =
  let tree = mk_tree () in
  for i = 0 to 99 do
    Blsm.Tree.put tree (Repro_util.Keygen.key_of_id i) (String.make 100 'v')
  done;
  ignore (Blsm.Tree.get tree (Repro_util.Keygen.key_of_id 1));
  let reg = Blsm.Tree.metrics tree in
  check Alcotest.bool "cached" true (reg == Blsm.Tree.metrics tree);
  let out = Obs.Metrics.dump reg in
  List.iter
    (fun frag ->
      if not (contains out frag) then
        Alcotest.failf "missing %s in dump" frag)
    [ "tree.puts 100"; "tree.gets 1"; "disk."; "wal."; "buf."; "faults." ]

(* -------------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "dump text" `Quick test_registry_dump_text;
          Alcotest.test_case "samples at dump time" `Quick
            test_registry_samples_at_dump_time;
          Alcotest.test_case "histogram expansion" `Quick
            test_registry_histogram_expansion;
          Alcotest.test_case "prefix filter" `Quick test_registry_prefix_filter;
          Alcotest.test_case "duplicate rejected" `Quick
            test_registry_duplicate_rejected;
          Alcotest.test_case "json shape" `Quick test_registry_json_shape;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled is no-op" `Quick
            test_trace_disabled_is_noop;
          Alcotest.test_case "chrome buffer" `Quick test_trace_chrome_buffer;
          Alcotest.test_case "jsonl lines" `Quick test_trace_jsonl_lines;
          Alcotest.test_case "file sink" `Quick test_trace_file_sink;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "spring sums tile stall_us" `Quick
            test_attribution_sums_spring;
          Alcotest.test_case "naive charges hard stalls" `Quick
            test_attribution_naive_hard_stalls;
          Alcotest.test_case "recovery time attributed" `Quick
            test_recovery_time_attributed;
          Alcotest.test_case "deterministic traces" `Quick
            test_trace_deterministic;
          Alcotest.test_case "tree metrics registry" `Quick
            test_tree_metrics_registry;
        ] );
    ]
