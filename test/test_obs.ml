(* Tests for lib/obs (metrics registry, event tracing) and the tree's
   stall attribution: registry dump formats, duplicate rejection, prefix
   filtering; trace sinks, zero-cost-when-disabled, determinism; and the
   ISSUE-3 acceptance property that for a saturated spring-scheduler run
   the attributed stall causes sum to stall_us for every operation. *)

let check = Alcotest.check

(* substring test (no Str dependency) *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* -------------------------------------------------------------------- *)
(* Metrics registry *)

let test_registry_dump_text () =
  let reg = Obs.Metrics.create () in
  let n = ref 0 in
  Obs.Metrics.counter reg "b.count" ~help:"ops" (fun () -> !n);
  Obs.Metrics.gauge reg "a.fill" ~help:"fraction" (fun () -> 0.25);
  n := 41;
  incr n;
  check Alcotest.string "sorted name value lines"
    "a.fill 0.250\nb.count 42\n" (Obs.Metrics.dump reg)

let test_registry_samples_at_dump_time () =
  let reg = Obs.Metrics.create () in
  let n = ref 0 in
  Obs.Metrics.counter reg "x" ~help:"" (fun () -> !n);
  let before = Obs.Metrics.dump reg in
  n := 7;
  let after = Obs.Metrics.dump reg in
  check Alcotest.string "before" "x 0\n" before;
  check Alcotest.string "after" "x 7\n" after

let test_registry_histogram_expansion () =
  let reg = Obs.Metrics.create () in
  let h = Repro_util.Histogram.create () in
  List.iter (fun v -> Repro_util.Histogram.add h v) [ 1; 2; 3; 4; 100 ];
  Obs.Metrics.histogram reg "lat" ~help:"" h;
  let out = Obs.Metrics.dump reg in
  List.iter
    (fun field ->
      if not (contains out field)
      then Alcotest.failf "missing %s in %S" field out)
    [ "lat.count 5"; "lat.mean"; "lat.p50"; "lat.p99"; "lat.p999"; "lat.max" ]

let test_registry_prefix_filter () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.counter reg "tree.puts" ~help:"" (fun () -> 1);
  Obs.Metrics.counter reg "disk.seeks" ~help:"" (fun () -> 2);
  Obs.Metrics.counter reg "tree.gets" ~help:"" (fun () -> 3);
  check Alcotest.string "tree only" "tree.gets 3\ntree.puts 1\n"
    (Obs.Metrics.dump ~prefix:"tree." reg);
  check Alcotest.string "disk only" "disk.seeks 2\n"
    (Obs.Metrics.dump ~prefix:"disk." reg)

let test_registry_duplicate_rejected () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.counter reg "dup" ~help:"" (fun () -> 0);
  match Obs.Metrics.gauge reg "dup" ~help:"" (fun () -> 0.0) with
  | () -> Alcotest.fail "duplicate name accepted"
  | exception Invalid_argument _ -> ()

let test_registry_json_shape () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.counter reg "c" ~help:"" (fun () -> 3);
  Obs.Metrics.gauge reg "g" ~help:"" (fun () -> 1.5);
  let h = Repro_util.Histogram.create () in
  Repro_util.Histogram.add h 10;
  Obs.Metrics.histogram reg "h" ~help:"" h;
  let out = Obs.Metrics.dump_json reg in
  List.iter
    (fun frag ->
      if not (contains out frag) then
        Alcotest.failf "missing %s in %S" frag out)
    [ "\"c\": 3"; "\"g\": 1.500"; "\"h\": {"; "\"count\": 1" ];
  check Alcotest.bool "object delimited" true
    (String.length out > 2 && out.[0] = '{')

(* -------------------------------------------------------------------- *)
(* Trace sinks *)

let test_trace_disabled_is_noop () =
  let tr = Obs.Trace.create () in
  check Alcotest.bool "disabled" false (Obs.Trace.enabled tr);
  Obs.Trace.instant tr ~cat:"t" ~name:"e" ~args:[];
  Obs.Trace.complete tr ~cat:"t" ~name:"s" ~ts_us:0.0 ~dur_us:1.0 ~args:[];
  check Alcotest.int "nothing emitted" 0 (Obs.Trace.events_emitted tr)

let test_trace_chrome_buffer () =
  let clock = ref 100.0 in
  let tr = Obs.Trace.create ~now:(fun () -> !clock) () in
  let finish = Obs.Trace.enable_buffer tr ~format:Obs.Trace.Chrome in
  check Alcotest.bool "enabled" true (Obs.Trace.enabled tr);
  Obs.Trace.instant tr ~cat:"c" ~name:"tick"
    ~args:[ ("n", Obs.Trace.I 1); ("ok", Obs.Trace.B true) ];
  clock := 250.0;
  Obs.Trace.complete tr ~cat:"c" ~name:"span" ~ts_us:100.0 ~dur_us:150.0
    ~args:[ ("f", Obs.Trace.F 1.5); ("s", Obs.Trace.S "x\"y") ];
  let doc = finish () in
  check Alcotest.bool "disabled after finish" false (Obs.Trace.enabled tr);
  check Alcotest.int "two events" 2 (Obs.Trace.events_emitted tr);
  let has frag = contains doc frag in
  List.iter
    (fun frag ->
      if not (has frag) then Alcotest.failf "missing %s in %S" frag doc)
    [
      "{\"traceEvents\":[";
      "\"ph\":\"i\"";
      "\"name\":\"tick\"";
      "\"ts\":100.000";
      "\"ph\":\"X\"";
      "\"dur\":150.000";
      "\"s\":\"x\\\"y\"";
    ]

let test_trace_jsonl_lines () =
  let tr = Obs.Trace.create () in
  let finish = Obs.Trace.enable_buffer tr ~format:Obs.Trace.Jsonl in
  for i = 1 to 3 do
    Obs.Trace.instant tr ~cat:"c" ~name:"e" ~args:[ ("i", Obs.Trace.I i) ]
  done;
  let doc = finish () in
  let lines =
    String.split_on_char '\n' doc |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one object per line" 3 (List.length lines);
  List.iter
    (fun l ->
      if not (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}')
      then Alcotest.failf "line not an object: %S" l)
    lines

let test_trace_file_sink () =
  let path = Filename.temp_file "obs_test" ".trace.json" in
  let tr = Obs.Trace.create () in
  Obs.Trace.enable_file tr ~format:Obs.Trace.Chrome path;
  Obs.Trace.instant tr ~cat:"c" ~name:"e" ~args:[];
  Obs.Trace.disable tr;
  let doc = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  check Alcotest.bool "has header" true
    (contains doc "{\"traceEvents\":[");
  check Alcotest.bool "has footer" true
    (contains doc "]}")

(* -------------------------------------------------------------------- *)
(* Tree integration: attribution and determinism *)

let mk_tree ?(scheduler = Blsm.Config.Spring) ?(c0_kb = 64) () =
  let store =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 1024;
          cfg_durability = Pagestore.Wal.Full;
        }
      Simdisk.Profile.ssd_raid0
  in
  Blsm.Tree.create
    ~config:
      {
        Blsm.Config.default with
        Blsm.Config.c0_bytes = c0_kb * 1024;
        scheduler;
        snowshovel = scheduler <> Blsm.Config.Gear;
      }
    store

let saturated_run ?scheduler ~ops () =
  let tree = mk_tree ?scheduler () in
  let prng = Repro_util.Prng.of_int 11 in
  let worst = ref 0.0 in
  for i = 0 to ops - 1 do
    Blsm.Tree.put tree
      (Repro_util.Keygen.key_of_id i)
      (Repro_util.Keygen.value prng 512);
    let sb = Blsm.Tree.last_stall tree in
    let attributed =
      sb.Blsm.Tree.sb_merge1_us +. sb.Blsm.Tree.sb_merge2_us
      +. sb.Blsm.Tree.sb_hard_us
    in
    worst :=
      Float.max !worst (Float.abs (attributed -. sb.Blsm.Tree.sb_total_us))
  done;
  (tree, !worst)

let test_attribution_sums_spring () =
  let tree, worst = saturated_run ~ops:2_000 () in
  if worst > 0.5 then
    Alcotest.failf "worst attribution error %.6f us over 0.5" worst;
  let s = Blsm.Tree.stats tree in
  check Alcotest.bool "spring run paced merges" true (s.stall_merge1_us > 0.0);
  check Alcotest.bool "wal time attributed" true (s.wal_us > 0.0)

let test_attribution_naive_hard_stalls () =
  let tree, worst =
    saturated_run ~scheduler:Blsm.Config.Naive ~ops:2_000 ()
  in
  if worst > 0.5 then
    Alcotest.failf "worst attribution error %.6f us over 0.5" worst;
  let s = Blsm.Tree.stats tree in
  check Alcotest.bool "naive run hard-stalled" true (s.hard_stalls > 0);
  check Alcotest.bool "hard time attributed" true (s.stall_hard_us > 0.0)

let test_recovery_time_attributed () =
  let tree = mk_tree () in
  for i = 0 to 200 do
    Blsm.Tree.put tree (Repro_util.Keygen.key_of_id i) (String.make 100 'v')
  done;
  let fresh = Blsm.Tree.crash_and_recover tree in
  check Alcotest.bool "recovery_us > 0" true
    ((Blsm.Tree.stats fresh).recovery_us > 0.0)

let traced_run ~seed ~ops =
  let tree = mk_tree () in
  let tr = Pagestore.Store.trace (Blsm.Tree.store tree) in
  let finish = Obs.Trace.enable_buffer tr ~format:Obs.Trace.Chrome in
  let prng = Repro_util.Prng.of_int seed in
  for i = 0 to ops - 1 do
    (* per-op sizes drawn from the seed so distinct seeds give distinct
       timings (value *content* alone never reaches the trace) *)
    Blsm.Tree.put tree
      (Repro_util.Keygen.key_of_id i)
      (Repro_util.Keygen.value prng (64 + Repro_util.Prng.int prng 256))
  done;
  finish ()

let test_trace_deterministic () =
  let a = traced_run ~seed:5 ~ops:800 in
  let b = traced_run ~seed:5 ~ops:800 in
  check Alcotest.bool "byte-identical same-seed traces" true (String.equal a b);
  let c = traced_run ~seed:6 ~ops:800 in
  check Alcotest.bool "different seed differs" false (String.equal a c)

let test_tree_metrics_registry () =
  let tree = mk_tree () in
  for i = 0 to 99 do
    Blsm.Tree.put tree (Repro_util.Keygen.key_of_id i) (String.make 100 'v')
  done;
  ignore (Blsm.Tree.get tree (Repro_util.Keygen.key_of_id 1));
  let reg = Blsm.Tree.metrics tree in
  check Alcotest.bool "cached" true (reg == Blsm.Tree.metrics tree);
  let out = Obs.Metrics.dump reg in
  List.iter
    (fun frag ->
      if not (contains out frag) then
        Alcotest.failf "missing %s in dump" frag)
    [ "tree.puts 100"; "tree.gets 1"; "disk."; "wal."; "buf."; "faults." ]

(* -------------------------------------------------------------------- *)
(* Windowed aggregation (PR 8) *)

let test_windows_rows_and_gaps () =
  let w = Obs.Windows.create ~width_us:1_000_000 in
  Obs.Windows.record w ~time_us:100.0 ~latency_us:10;
  Obs.Windows.record w ~time_us:200.0 ~latency_us:30;
  (* window 1 empty: a full stall must appear as a zero row *)
  Obs.Windows.record w ~time_us:2_500_000.0 ~latency_us:50;
  match Obs.Windows.rows w with
  | [ r0; r1; r2 ] ->
      check Alcotest.int "w0 ops" 2 r0.Obs.Windows.r_ops;
      check (Alcotest.float 0.01) "w0 ops/sec" 2.0 r0.Obs.Windows.r_ops_per_sec;
      check Alcotest.int "w0 max" 30 r0.Obs.Windows.r_max_us;
      check Alcotest.int "stalled window ops" 0 r1.Obs.Windows.r_ops;
      check Alcotest.int "stalled window p999" 0 r1.Obs.Windows.r_p999_us;
      check (Alcotest.float 0.001) "w2 start" 2.0 r2.Obs.Windows.r_t_sec;
      check Alcotest.int "w2 p50" 50 r2.Obs.Windows.r_p50_us
  | rows -> Alcotest.failf "expected 3 rows, got %d" (List.length rows)

let test_windows_empty () =
  let w = Obs.Windows.create ~width_us:1000 in
  check Alcotest.int "no rows" 0 (List.length (Obs.Windows.rows w));
  check Alcotest.int "no ops" 0 (Obs.Windows.total_ops w);
  let tv = Obs.Windows.throughput w in
  check Alcotest.int "no windows" 0 tv.Obs.Windows.tv_windows;
  check (Alcotest.float 0.0) "cv" 0.0 tv.Obs.Windows.tv_cv

let test_windows_single_sample () =
  let w = Obs.Windows.create ~width_us:500_000 in
  Obs.Windows.record w ~time_us:750_000.0 ~latency_us:123;
  match Obs.Windows.rows w with
  | [ r ] ->
      check (Alcotest.float 0.001) "start" 0.5 r.Obs.Windows.r_t_sec;
      check Alcotest.int "ops" 1 r.Obs.Windows.r_ops;
      List.iter
        (fun v -> check Alcotest.int "all quantiles = the sample" 123 v)
        [ r.Obs.Windows.r_p50_us; r.Obs.Windows.r_p99_us;
          r.Obs.Windows.r_p999_us; r.Obs.Windows.r_max_us ]
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

let test_windows_boundary_op () =
  (* a completion stamped exactly on a window edge opens the next
     window — mirrors the Timeseries convention *)
  let w = Obs.Windows.create ~width_us:1_000 in
  Obs.Windows.record w ~time_us:999.0 ~latency_us:1;
  Obs.Windows.record w ~time_us:1_000.0 ~latency_us:9;
  match Obs.Windows.rows w with
  | [ r0; r1 ] ->
      check Alcotest.int "edge op not in window 0" 1 r0.Obs.Windows.r_ops;
      check Alcotest.int "edge op in window 1" 1 r1.Obs.Windows.r_ops;
      check Alcotest.int "its latency too" 9 r1.Obs.Windows.r_max_us
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let test_windows_merge_rollup () =
  let a = Obs.Windows.create ~width_us:1_000 in
  let b = Obs.Windows.create ~width_us:1_000 in
  Obs.Windows.record a ~time_us:500.0 ~latency_us:10;
  Obs.Windows.record b ~time_us:600.0 ~latency_us:30;
  Obs.Windows.record b ~time_us:2_500.0 ~latency_us:7;
  Obs.Windows.merge ~into:a b;
  check Alcotest.int "total ops" 3 (Obs.Windows.total_ops a);
  (match Obs.Windows.rows a with
  | [ r0; r1; r2 ] ->
      check Alcotest.int "window 0 merged" 2 r0.Obs.Windows.r_ops;
      check Alcotest.int "window 0 max" 30 r0.Obs.Windows.r_max_us;
      check Alcotest.int "gap window" 0 r1.Obs.Windows.r_ops;
      check Alcotest.int "window 2 from src only" 1 r2.Obs.Windows.r_ops
  | rows -> Alcotest.failf "expected 3 rows, got %d" (List.length rows));
  (* src untouched *)
  check Alcotest.int "src ops" 2 (Obs.Windows.total_ops b)

let test_windows_merge_width_mismatch () =
  let a = Obs.Windows.create ~width_us:1_000 in
  let b = Obs.Windows.create ~width_us:2_000 in
  match Obs.Windows.merge ~into:a b with
  | () -> Alcotest.fail "width mismatch accepted"
  | exception Invalid_argument _ -> ()

let test_windows_throughput_cv () =
  let w = Obs.Windows.create ~width_us:1_000_000 in
  (* two windows: 4 ops then 2 ops -> mean 3, stddev 1, cv 1/3 *)
  for i = 1 to 4 do
    Obs.Windows.record w ~time_us:(float_of_int (i * 1000)) ~latency_us:1
  done;
  for i = 1 to 2 do
    Obs.Windows.record w
      ~time_us:(1_000_000.0 +. float_of_int (i * 1000))
      ~latency_us:1
  done;
  let tv = Obs.Windows.throughput w in
  check Alcotest.int "windows" 2 tv.Obs.Windows.tv_windows;
  check (Alcotest.float 0.01) "mean" 3.0 tv.Obs.Windows.tv_mean_ops_per_sec;
  check (Alcotest.float 0.01) "stddev" 1.0 tv.Obs.Windows.tv_stddev_ops_per_sec;
  check (Alcotest.float 0.001) "cv" (1.0 /. 3.0) tv.Obs.Windows.tv_cv;
  check (Alcotest.float 0.01) "min" 2.0 tv.Obs.Windows.tv_min_ops_per_sec;
  check (Alcotest.float 0.01) "max" 4.0 tv.Obs.Windows.tv_max_ops_per_sec

let test_windows_renderers_and_registry () =
  let w = Obs.Windows.create ~width_us:1_000_000 in
  Obs.Windows.record w ~time_us:10.0 ~latency_us:100;
  Obs.Windows.record w ~time_us:20.0 ~latency_us:300;
  let csv = Obs.Windows.rows_csv w in
  check Alcotest.bool "csv header" true
    (contains csv "t_sec,ops,ops_per_sec,mean_us,p50_us,p99_us,p999_us,max_us");
  check Alcotest.bool "csv row" true (contains csv "0.000,2,");
  let json = Obs.Windows.rows_json w in
  List.iter
    (fun frag ->
      if not (contains json frag) then
        Alcotest.failf "missing %s in %S" frag json)
    [ "\"t_sec\": 0.000"; "\"ops\": 2"; "\"p999_us\": 300" ];
  let reg = Obs.Metrics.create () in
  Obs.Windows.register w reg ~name:"lat";
  let out = Obs.Metrics.dump reg in
  List.iter
    (fun frag ->
      if not (contains out frag) then
        Alcotest.failf "missing %s in %S" frag out)
    [ "lat.windows 1"; "lat.ops 2"; "lat.p999_us.worst 300" ]

(* -------------------------------------------------------------------- *)
(* Stall-episode detection (PR 8) *)

let feed_ep e ~t ~m1 ~m2 ~h =
  Obs.Episodes.feed e ~time_us:t ~merge1_us:m1 ~merge2_us:m2 ~hard_us:h

let test_episodes_known_boundaries () =
  let e = Obs.Episodes.create ~gap_us:100.0 () in
  (* episode 1: two contiguous merge1-dominated stalls *)
  feed_ep e ~t:1_000.0 ~m1:400.0 ~m2:0.0 ~h:0.0;
  feed_ep e ~t:1_050.0 ~m1:30.0 ~m2:10.0 ~h:0.0;
  (* 500 us of quiet > gap: episode 2, hard-dominated *)
  feed_ep e ~t:1_600.0 ~m1:0.0 ~m2:10.0 ~h:40.0;
  match Obs.Episodes.episodes e with
  | [ a; b ] ->
      check (Alcotest.float 0.001) "ep1 start" 600.0 a.Obs.Episodes.ep_start_us;
      check (Alcotest.float 0.001) "ep1 end" 1_050.0 a.Obs.Episodes.ep_end_us;
      check Alcotest.int "ep1 ops" 2 a.Obs.Episodes.ep_ops;
      check (Alcotest.float 0.001) "ep1 total" 440.0 a.Obs.Episodes.ep_total_us;
      check Alcotest.string "ep1 label" "merge1" a.Obs.Episodes.ep_label;
      check (Alcotest.float 0.001) "ep2 start" 1_550.0 b.Obs.Episodes.ep_start_us;
      check Alcotest.string "ep2 label" "hard" b.Obs.Episodes.ep_label
  | eps -> Alcotest.failf "expected 2 episodes, got %d" (List.length eps)

let test_episodes_zero_samples_ignored () =
  let e = Obs.Episodes.create () in
  feed_ep e ~t:100.0 ~m1:0.0 ~m2:0.0 ~h:0.0;
  check Alcotest.int "nothing fed" 0 (Obs.Episodes.fed_samples e);
  check Alcotest.int "no episodes" 0 (List.length (Obs.Episodes.episodes e))

let test_episodes_tiling_invariant () =
  (* attribution quanta must tile each episode exactly, and episode
     totals must tile everything fed *)
  let e = Obs.Episodes.create ~gap_us:50.0 () in
  let prng = Repro_util.Prng.of_int 21 in
  let t = ref 0.0 in
  for _ = 1 to 500 do
    (* occasional long quiet gaps split episodes *)
    let quiet =
      if Repro_util.Prng.int prng 10 = 0 then 500.0
      else float_of_int (Repro_util.Prng.int prng 40)
    in
    let m1 = float_of_int (Repro_util.Prng.int prng 30) in
    let m2 = float_of_int (Repro_util.Prng.int prng 20) in
    let h = if Repro_util.Prng.int prng 5 = 0 then 25.0 else 0.0 in
    t := !t +. quiet +. m1 +. m2 +. h;
    feed_ep e ~t:!t ~m1 ~m2 ~h
  done;
  let eps = Obs.Episodes.episodes e in
  check Alcotest.bool "several episodes" true (List.length eps > 3);
  let sum = ref 0.0 in
  List.iter
    (fun ep ->
      let err =
        Float.abs
          (ep.Obs.Episodes.ep_merge1_us +. ep.Obs.Episodes.ep_merge2_us
           +. ep.Obs.Episodes.ep_hard_us -. ep.Obs.Episodes.ep_total_us)
      in
      if err > 1e-6 then Alcotest.failf "episode tiling err %.9f" err;
      sum := !sum +. ep.Obs.Episodes.ep_total_us)
    eps;
  check (Alcotest.float 1e-6) "episodes tile everything fed"
    (Obs.Episodes.fed_total_us e) !sum

let test_episodes_label_tiebreak () =
  (* exactly half hard, half merge2: severity order labels it hard *)
  let e = Obs.Episodes.create () in
  feed_ep e ~t:100.0 ~m1:0.0 ~m2:25.0 ~h:25.0;
  (match Obs.Episodes.episodes e with
  | [ ep ] -> check Alcotest.string "tie -> hard" "hard" ep.Obs.Episodes.ep_label
  | _ -> Alcotest.fail "expected 1 episode");
  (* no cause reaching half: mixed *)
  let e2 = Obs.Episodes.create () in
  feed_ep e2 ~t:100.0 ~m1:20.0 ~m2:15.0 ~h:15.0;
  match Obs.Episodes.episodes e2 with
  | [ ep ] -> check Alcotest.string "mixed" "mixed" ep.Obs.Episodes.ep_label
  | _ -> Alcotest.fail "expected 1 episode"

let episodes_run seed =
  (* a seeded synthetic stall sequence rendered every way we emit it *)
  let e = Obs.Episodes.create ~gap_us:80.0 () in
  let prng = Repro_util.Prng.of_int seed in
  let t = ref 0.0 in
  for _ = 1 to 200 do
    let quiet = float_of_int (Repro_util.Prng.int prng 200) in
    let m1 = float_of_int (Repro_util.Prng.int prng 50) in
    let m2 = float_of_int (Repro_util.Prng.int prng 30) in
    t := !t +. quiet +. m1 +. m2;
    feed_ep e ~t:!t ~m1 ~m2 ~h:0.0
  done;
  let eps = Obs.Episodes.episodes e in
  let tr = Obs.Trace.create () in
  let finish = Obs.Trace.enable_buffer tr ~format:Obs.Trace.Chrome in
  Obs.Episodes.emit_counters tr e;
  Obs.Episodes.to_json eps ^ "\n" ^ Obs.Episodes.to_csv eps ^ "\n" ^ finish ()

let test_episodes_deterministic () =
  let a = episodes_run 13 and b = episodes_run 13 in
  check Alcotest.bool "same-seed byte-identical" true (String.equal a b);
  let c = episodes_run 14 in
  check Alcotest.bool "different seed differs" false (String.equal a c)

let test_episodes_counter_trace () =
  let e = Obs.Episodes.create () in
  feed_ep e ~t:1_000.0 ~m1:100.0 ~m2:0.0 ~h:0.0;
  let tr = Obs.Trace.create () in
  let finish = Obs.Trace.enable_buffer tr ~format:Obs.Trace.Chrome in
  Obs.Episodes.emit_counters tr e;
  let doc = finish () in
  List.iter
    (fun frag ->
      if not (contains doc frag) then
        Alcotest.failf "missing %s in %S" frag doc)
    [
      "\"ph\":\"C\"";
      "\"name\":\"stall\"";
      "\"ts\":900.000";
      "\"merge1_us\":100.000";
      (* the zero sample closing the episode's track *)
      "\"ts\":1000.000";
      "\"merge1_us\":0.000";
    ]

(* The end-to-end hookup: a saturated tree feeds the detector through
   Tree.on_stall, and what arrives tiles what the tree charged. *)
let test_episodes_from_tree_observer () =
  let tree = mk_tree () in
  let disk = Blsm.Tree.disk tree in
  let e = Obs.Episodes.create ~gap_us:100.0 () in
  Blsm.Tree.on_stall tree (fun sb ->
      Obs.Episodes.feed e
        ~time_us:(Simdisk.Disk.now_us disk)
        ~merge1_us:sb.Blsm.Tree.sb_merge1_us
        ~merge2_us:sb.Blsm.Tree.sb_merge2_us
        ~hard_us:sb.Blsm.Tree.sb_hard_us);
  let prng = Repro_util.Prng.of_int 31 in
  for i = 0 to 1_999 do
    Blsm.Tree.put tree
      (Repro_util.Keygen.key_of_id i)
      (Repro_util.Keygen.value prng 512)
  done;
  check Alcotest.bool "observer fired" true (Obs.Episodes.fed_samples e > 0);
  let eps = Obs.Episodes.episodes e in
  check Alcotest.bool "episodes found" true (eps <> []);
  List.iter
    (fun ep ->
      let err =
        Float.abs
          (ep.Obs.Episodes.ep_merge1_us +. ep.Obs.Episodes.ep_merge2_us
           +. ep.Obs.Episodes.ep_hard_us -. ep.Obs.Episodes.ep_total_us)
      in
      if err > 0.5 then Alcotest.failf "tree episode tiling err %.6f" err)
    eps

(* -------------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "dump text" `Quick test_registry_dump_text;
          Alcotest.test_case "samples at dump time" `Quick
            test_registry_samples_at_dump_time;
          Alcotest.test_case "histogram expansion" `Quick
            test_registry_histogram_expansion;
          Alcotest.test_case "prefix filter" `Quick test_registry_prefix_filter;
          Alcotest.test_case "duplicate rejected" `Quick
            test_registry_duplicate_rejected;
          Alcotest.test_case "json shape" `Quick test_registry_json_shape;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled is no-op" `Quick
            test_trace_disabled_is_noop;
          Alcotest.test_case "chrome buffer" `Quick test_trace_chrome_buffer;
          Alcotest.test_case "jsonl lines" `Quick test_trace_jsonl_lines;
          Alcotest.test_case "file sink" `Quick test_trace_file_sink;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "spring sums tile stall_us" `Quick
            test_attribution_sums_spring;
          Alcotest.test_case "naive charges hard stalls" `Quick
            test_attribution_naive_hard_stalls;
          Alcotest.test_case "recovery time attributed" `Quick
            test_recovery_time_attributed;
          Alcotest.test_case "deterministic traces" `Quick
            test_trace_deterministic;
          Alcotest.test_case "tree metrics registry" `Quick
            test_tree_metrics_registry;
        ] );
      ( "windows",
        [
          Alcotest.test_case "rows and gaps" `Quick test_windows_rows_and_gaps;
          Alcotest.test_case "empty" `Quick test_windows_empty;
          Alcotest.test_case "single sample" `Quick test_windows_single_sample;
          Alcotest.test_case "boundary op" `Quick test_windows_boundary_op;
          Alcotest.test_case "merge rollup" `Quick test_windows_merge_rollup;
          Alcotest.test_case "merge width mismatch" `Quick
            test_windows_merge_width_mismatch;
          Alcotest.test_case "throughput cv" `Quick test_windows_throughput_cv;
          Alcotest.test_case "renderers and registry" `Quick
            test_windows_renderers_and_registry;
        ] );
      ( "episodes",
        [
          Alcotest.test_case "known boundaries" `Quick
            test_episodes_known_boundaries;
          Alcotest.test_case "zero samples ignored" `Quick
            test_episodes_zero_samples_ignored;
          Alcotest.test_case "tiling invariant" `Quick
            test_episodes_tiling_invariant;
          Alcotest.test_case "label tiebreak" `Quick test_episodes_label_tiebreak;
          Alcotest.test_case "deterministic" `Quick test_episodes_deterministic;
          Alcotest.test_case "counter trace" `Quick test_episodes_counter_trace;
          Alcotest.test_case "from tree observer" `Quick
            test_episodes_from_tree_observer;
        ] );
    ]
