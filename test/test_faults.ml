(* Fault injection and corruption tolerance.

   A seeded, deterministic fault plan (Simdisk.Faults) tears in-flight
   writes at power loss, drops acked-but-unpersisted pages, flips stored
   bits, and fires crash points mid-merge and mid-flush. These tests
   check the recovery contract on top of that:

   - torn WAL tail  -> truncated; recovery lands on the exact acked prefix
   - mid-log WAL rot -> typed Tree.Corruption, never silent skipping
   - torn/rotted component pages -> detected by checksums; rebuilt from
     WAL replay when the log still covers the component, quarantined
     (loud reads) when it does not, masked when the damage is derived
     data (Bloom filters)
   - Tree.scrub walks every checksum on demand and reports what it finds
   - Degraded durability actually differs from Full: the unsynced
     group-commit window is lost at crash, as a clean prefix

   All invariants are checked against a Map model of acked operations:
   never a silently wrong get/scan. *)

module SMap = Map.Make (String)

let mk_store ?(durability = Pagestore.Wal.Full) () =
  Pagestore.Store.create
    ~config:
      { Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = 128;
        cfg_durability = durability }
    Simdisk.Profile.ssd_raid0

let small_config ?(scheduler = Blsm.Config.Spring) ?(snowshovel = true) () =
  {
    Blsm.Config.default with
    Blsm.Config.c0_bytes = 24 * 1024;
    size_ratio = Blsm.Config.Fixed 3.0;
    extent_pages = 8;
    scheduler;
    snowshovel;
    max_quota_per_write = 128 * 1024;
  }

(* Platter page id of chain position [pos] in a component. *)
let page_at (f : Sstable.Sst_format.footer) pos =
  let rec go pos = function
    | [] -> invalid_arg "page_at"
    | (start, len) :: rest -> if pos < len then start + pos else go (pos - len) rest
  in
  go pos f.Sstable.Sst_format.extents

(* First mounted component that has data pages, newest level first. *)
let first_data_component tree =
  List.find
    (fun ((_ : string), (f : Sstable.Sst_format.footer)) ->
      f.Sstable.Sst_format.data_pages > 0)
    (Blsm.Tree.component_footers tree)

let check_model ~what tree model =
  SMap.iter
    (fun k v ->
      match Blsm.Tree.get tree k with
      | Some v' when v' = v -> ()
      | _ -> Alcotest.failf "%s: key %s wrong or missing" what k)
    model;
  if Blsm.Tree.scan tree "" 100_000 <> SMap.bindings model then
    Alcotest.failf "%s: scan disagrees with model" what

(* Every modelled key reads either correctly or loudly; returns how many
   reads raised the typed corruption error. *)
let count_loud_reads tree model =
  let raised = ref 0 in
  SMap.iter
    (fun k v ->
      match Blsm.Tree.get tree k with
      | Some v' when v' = v -> ()
      | Some _ | None -> Alcotest.failf "silently wrong answer for key %s" k
      | exception Blsm.Tree.Corruption _ -> incr raised)
    model;
  !raised

(* ------------------------------------------------------------------ *)
(* The acceptance scenario: one seeded plan drives a torn page at a
   mid-merge power loss, then a torn WAL tail, then bit rot in a live
   component extent. Recovery must land on the exact acked state each
   time, with the rot reported by scrub and the read path. *)

let test_acceptance_scenario () =
  let store = mk_store () in
  let wal = Pagestore.Store.wal store in
  let tree = ref (Blsm.Tree.create ~config:(small_config ()) store) in
  let model = ref SMap.empty in
  let put i =
    let k = Printf.sprintf "key%04d" (i mod 300) in
    let v = Printf.sprintf "v%06d-%s" i (String.make 60 'p') in
    Blsm.Tree.put !tree k v;
    (* only reached when the put was acked *)
    model := SMap.add k v !model
  in
  for i = 0 to 1499 do put i done;
  Blsm.Tree.flush !tree;
  (* 1. power loss tearing the in-flight page of a merge flush *)
  let plan = Simdisk.Faults.create ~seed:0xb15a () in
  Pagestore.Store.set_faults store plan;
  Simdisk.Faults.schedule_crash_at_page_write ~torn:true plan ~after:30;
  let fired = ref false in
  (try
     for i = 1500 to 3999 do put i done
   with Simdisk.Faults.Crash_point _ -> fired := true);
  Alcotest.(check bool) "mid-merge crash fired" true !fired;
  tree := Blsm.Tree.crash_and_recover ~verify:true !tree;
  (* ~verify checksummed every mounted page: no torn component visible *)
  check_model ~what:"after mid-merge torn-page crash" !tree !model;
  (* 2. power loss tearing the in-flight WAL append *)
  Simdisk.Faults.schedule_crash_at_wal_append ~torn:true plan ~after:12;
  let fired = ref false in
  (try
     for i = 4000 to 4999 do put i done
   with Simdisk.Faults.Crash_point _ -> fired := true);
  Alcotest.(check bool) "torn-append crash fired" true !fired;
  tree := Blsm.Tree.crash_and_recover ~verify:true !tree;
  check_model ~what:"after torn WAL tail" !tree !model;
  Alcotest.(check bool) "replay truncated a torn tail" true
    (Pagestore.Wal.torn_tail_drops wal >= 1);
  (* 3. bit rot in a live component extent *)
  Blsm.Tree.flush !tree;
  let _, f = first_data_component !tree in
  let page = page_at f 0 in
  Alcotest.(check bool) "bit flipped" true
    (Pagestore.Store.corrupt_page store page ~byte:512 ~bit:3);
  let report = Blsm.Tree.scrub !tree in
  Alcotest.(check bool) "scrub is not clean" false report.Blsm.Tree.scrub_clean;
  Alcotest.(check bool) "scrub names the rotted page" true
    (List.exists
       (fun ((_ : string), what, p) -> p = page && what = "data page checksum")
       report.Blsm.Tree.scrub_errors);
  let loud = count_loud_reads !tree !model in
  Alcotest.(check bool) "rot is loud on the read path" true (loud > 0);
  Alcotest.(check bool) "stats counted the corruption" true
    ((Blsm.Tree.stats !tree).Blsm.Tree.corruptions_detected > 0)

(* ------------------------------------------------------------------ *)
(* Rebuild-from-WAL: when the log still covers a component, a rotted
   page costs nothing but the replay — recovery drops the component and
   the acked state comes back exactly. *)

let test_bitflip_rebuild_from_wal () =
  let store = mk_store () in
  let wal = Pagestore.Store.wal store in
  (* a second log client pins the truncation floor, so every component
     stays fully WAL-covered *)
  Pagestore.Wal.register_client wal ~client:"pin";
  let tree = ref (Blsm.Tree.create ~config:(small_config ()) store) in
  let model = ref SMap.empty in
  for i = 0 to 999 do
    let k = Printf.sprintf "key%04d" (i mod 250) in
    let v = Printf.sprintf "v%06d-%s" i (String.make 50 'r') in
    Blsm.Tree.put !tree k v;
    model := SMap.add k v !model
  done;
  Blsm.Tree.flush !tree;
  let _, f = first_data_component !tree in
  Alcotest.(check bool) "flipped" true
    (Pagestore.Store.corrupt_page store (page_at f 0) ~byte:700 ~bit:5);
  tree := Blsm.Tree.crash_and_recover ~verify:true !tree;
  Alcotest.(check bool) "component was rebuilt from the log" true
    ((Blsm.Tree.stats !tree).Blsm.Tree.component_rebuilds >= 1);
  check_model ~what:"after rebuild" !tree !model;
  let report = Blsm.Tree.scrub !tree in
  Alcotest.(check bool) "scrub clean after rebuild" true
    report.Blsm.Tree.scrub_clean

(* Quarantine: under Degraded durability the log never covers a
   component, so a rotted one is mounted read-around — good pages stay
   readable, the rotted one raises the typed error. *)

let test_bitflip_quarantine () =
  let store = mk_store ~durability:Pagestore.Wal.Degraded () in
  let wal = Pagestore.Store.wal store in
  let tree = ref (Blsm.Tree.create ~config:(small_config ()) store) in
  let model = ref SMap.empty in
  for i = 0 to 999 do
    let k = Printf.sprintf "key%04d" (i mod 250) in
    let v = Printf.sprintf "v%06d-%s" i (String.make 50 'q') in
    Blsm.Tree.put !tree k v;
    model := SMap.add k v !model
  done;
  Blsm.Tree.flush !tree;
  Pagestore.Wal.sync wal;
  (* group-commit tail synced: the crash loses nothing *)
  let _, f = first_data_component !tree in
  Alcotest.(check bool) "flipped" true
    (Pagestore.Store.corrupt_page store (page_at f 0) ~byte:256 ~bit:1);
  tree := Blsm.Tree.crash_and_recover ~verify:true !tree;
  Alcotest.(check bool) "component quarantined" true
    ((Blsm.Tree.stats !tree).Blsm.Tree.quarantined_components >= 1);
  let loud = count_loud_reads !tree !model in
  Alcotest.(check bool) "the rotted page is loud, the rest readable" true
    (loud > 0 && loud < SMap.cardinal !model)

(* A rotted Bloom blob is derived data: recovery masks it by rebuilding
   the filter from a scan. No drop, no quarantine, no read errors. *)

let test_bloom_rot_masked () =
  let config = { (small_config ()) with Blsm.Config.persist_bloom = true } in
  let store = mk_store () in
  let tree = ref (Blsm.Tree.create ~config store) in
  let model = ref SMap.empty in
  for i = 0 to 999 do
    let k = Printf.sprintf "key%04d" (i mod 250) in
    let v = Printf.sprintf "v%06d" i in
    Blsm.Tree.put !tree k v;
    model := SMap.add k v !model
  done;
  Blsm.Tree.flush !tree;
  let _, f =
    List.find
      (fun ((_ : string), (f : Sstable.Sst_format.footer)) ->
        f.Sstable.Sst_format.bloom_pages > 0)
      (Blsm.Tree.component_footers !tree)
  in
  let bloom_page =
    page_at f (f.Sstable.Sst_format.data_pages + f.Sstable.Sst_format.index_pages)
  in
  Alcotest.(check bool) "flipped" true
    (Pagestore.Store.corrupt_page store bloom_page ~byte:3 ~bit:0);
  tree := Blsm.Tree.crash_and_recover ~verify:true !tree;
  let s = Blsm.Tree.stats !tree in
  Alcotest.(check int) "nothing dropped" 0 s.Blsm.Tree.component_rebuilds;
  Alcotest.(check int) "nothing quarantined" 0 s.Blsm.Tree.quarantined_components;
  Alcotest.(check bool) "but the rot was counted" true
    (s.Blsm.Tree.corruptions_detected > 0);
  check_model ~what:"bloom rot masked" !tree !model

(* ------------------------------------------------------------------ *)
(* Degraded durability: the group-commit window is real. With no merges
   (default-sized C0) the log is the only durability, so recovery after
   a crash is exactly the synced prefix of the write sequence. *)

let test_degraded_group_commit_window () =
  let n = 50 in
  let store = mk_store ~durability:Pagestore.Wal.Degraded () in
  let wal = Pagestore.Store.wal store in
  let tree = Blsm.Tree.create store in
  for i = 0 to n - 1 do
    Blsm.Tree.put tree (Printf.sprintf "k%04d" i) (String.make 100 'v')
  done;
  let tree' = Blsm.Tree.crash_and_recover tree in
  let rows = Blsm.Tree.scan tree' "" 1000 in
  let survived = List.length rows in
  Alcotest.(check bool) "the unsynced tail was dropped" true
    (Pagestore.Wal.dropped_unsynced wal > 0);
  Alcotest.(check bool) "a strict synced prefix survived" true
    (survived > 0 && survived < n);
  List.iteri
    (fun i (k, v) ->
      Alcotest.(check string) "prefix key, in order, no gaps"
        (Printf.sprintf "k%04d" i) k;
      Alcotest.(check int) "value intact" 100 (String.length v))
    rows;
  (* control: Full durability with the identical workload loses nothing *)
  let store_f = mk_store () in
  let tree_f = Blsm.Tree.create store_f in
  for i = 0 to n - 1 do
    Blsm.Tree.put tree_f (Printf.sprintf "k%04d" i) (String.make 100 'v')
  done;
  let tree_f = Blsm.Tree.crash_and_recover tree_f in
  Alcotest.(check int) "Full keeps every acked write" n
    (List.length (Blsm.Tree.scan tree_f "" 1000))

(* Mid-log WAL rot is fatal and typed: unlike a torn tail it cannot be
   explained by power loss, and skipping the record would resurrect
   overwritten state. *)

let test_wal_midlog_rot_fatal () =
  let store = mk_store () in
  let wal = Pagestore.Store.wal store in
  let tree = Blsm.Tree.create store in
  for i = 0 to 99 do
    Blsm.Tree.put tree (Printf.sprintf "k%03d" i) (Printf.sprintf "v%d" i)
  done;
  Alcotest.(check bool) "rot one mid-log record" true
    (Pagestore.Wal.flip_bit wal ~lsn:50 ~byte:20 ~bit:2);
  let report = Blsm.Tree.scrub tree in
  Alcotest.(check bool) "scrub reports the WAL rot" true
    (List.exists
       (fun (lvl, (_ : string), lsn) -> lvl = "WAL" && lsn = 50)
       report.Blsm.Tree.scrub_errors);
  match Blsm.Tree.crash_and_recover tree with
  | _ -> Alcotest.fail "recovery must refuse a rotted mid-log record"
  | exception Blsm.Tree.Corruption { level = "WAL"; _ } -> ()

(* ------------------------------------------------------------------ *)
(* Properties *)

(* Torn WAL tail at a random append ordinal, under Full durability:
   recovery equals the acked-prefix model exactly. *)
let prop_torn_tail_acked_prefix =
  QCheck.Test.make ~name:"torn WAL tail recovers to exact acked prefix"
    ~count:25
    QCheck.(pair small_int (int_range 1 400))
    (fun (seed, tear_after) ->
      (* shrinking may step outside int_range's bounds *)
      let tear_after = max 1 tear_after in
      let store = mk_store () in
      let plan = Simdisk.Faults.create ~seed () in
      Pagestore.Store.set_faults store plan;
      Simdisk.Faults.schedule_crash_at_wal_append ~torn:true plan
        ~after:tear_after;
      let tree = ref (Blsm.Tree.create ~config:(small_config ()) store) in
      let model = ref SMap.empty in
      let prng = Repro_util.Prng.of_int ((seed * 7) + 1) in
      (try
         for i = 0 to 499 do
           let key = Printf.sprintf "key%03d" (Repro_util.Prng.int prng 120) in
           match Repro_util.Prng.int prng 6 with
           | 0 | 1 | 2 ->
               let v = Printf.sprintf "v%d-%s" i (String.make 40 't') in
               Blsm.Tree.put !tree key v;
               model := SMap.add key v !model
           | 3 ->
               Blsm.Tree.delete !tree key;
               model := SMap.remove key !model
           | _ ->
               let d = Printf.sprintf "+%d" i in
               Blsm.Tree.apply_delta !tree key d;
               model :=
                 SMap.update key
                   (function Some v -> Some (v ^ d) | None -> Some d)
                   !model
         done
       with Simdisk.Faults.Crash_point _ -> ());
      let tree = Blsm.Tree.crash_and_recover ~verify:true !tree in
      SMap.for_all (fun k v -> Blsm.Tree.get tree k = Some v) !model
      && Blsm.Tree.scan tree "" 10_000 = SMap.bindings !model)

(* A single scheduled bit flip on some future page write: detected (typed
   Corruption, possibly later at verified recovery) or masked (rebuilt /
   freed page) — never a silently wrong get or scan. *)
let prop_bitflip_never_silent =
  QCheck.Test.make
    ~name:"a single page bit flip is detected or masked, never silent"
    ~count:25
    QCheck.(pair small_int (int_range 1 250))
    (fun (seed, flip_after) ->
      let flip_after = max 1 flip_after in
      let store = mk_store () in
      let plan = Simdisk.Faults.create ~seed () in
      Pagestore.Store.set_faults store plan;
      Simdisk.Faults.schedule_page_bit_flip plan ~after:flip_after;
      let tree = ref (Blsm.Tree.create ~config:(small_config ()) store) in
      let model = ref SMap.empty in
      let prng = Repro_util.Prng.of_int ((seed * 13) + 5) in
      let ok = ref true in
      let detected = ref false in
      (try
         for i = 0 to 599 do
           let key = Printf.sprintf "key%03d" (Repro_util.Prng.int prng 120) in
           match Repro_util.Prng.int prng 5 with
           | 0 | 1 | 2 ->
               let v = Printf.sprintf "v%d-%s" i (String.make 40 'f') in
               Blsm.Tree.put !tree key v;
               model := SMap.add key v !model
           | 3 ->
               Blsm.Tree.delete !tree key;
               model := SMap.remove key !model
           | _ -> (
               match Blsm.Tree.get !tree key with
               | r -> if r <> SMap.find_opt key !model then ok := false
               | exception Blsm.Tree.Corruption _ -> raise Exit)
         done
       with
      | Exit -> detected := true
      | Blsm.Tree.Corruption _ -> detected := true);
      if not !ok then false
      else if !detected then true
      else
        (* the flip may still be latent: surface it with a fully verified
           recovery, then re-read everything *)
        match Blsm.Tree.crash_and_recover ~verify:true !tree with
        | exception Blsm.Tree.Corruption _ -> true
        | tree ->
            SMap.for_all
              (fun k v ->
                match Blsm.Tree.get tree k with
                | Some v' -> v' = v
                | None -> false
                | exception Blsm.Tree.Corruption _ -> true)
              !model
            && (match Blsm.Tree.scan tree "" 10_000 with
               | rows -> rows = SMap.bindings !model
               | exception Blsm.Tree.Corruption _ -> true))

(* ------------------------------------------------------------------ *)
(* The crash+fault matrix: {Spring, Gear} x {Full, Degraded, None_},
   each with a seeded mid-merge torn-page power loss. Full recovers the
   exact model; Degraded and None_ recover a consistent state whose
   every value was actually written (no fabrication, no tearing). *)

let matrix_case ~scheduler ~snowshovel ~durability ~seed =
  let store = mk_store ~durability () in
  let plan = Simdisk.Faults.create ~seed () in
  Pagestore.Store.set_faults store plan;
  Simdisk.Faults.schedule_crash_at_page_write ~torn:true plan
    ~after:(20 + (seed mod 40));
  let tree =
    ref (Blsm.Tree.create ~config:(small_config ~scheduler ~snowshovel ()) store)
  in
  let model = ref SMap.empty in
  let history = Hashtbl.create 64 in
  let prng = Repro_util.Prng.of_int (seed + 13) in
  let crashed = ref false in
  (try
     for i = 0 to 1499 do
       let key = Printf.sprintf "key%03d" (Repro_util.Prng.int prng 150) in
       let v = Printf.sprintf "v%d-%s" i (String.make 40 'm') in
       Blsm.Tree.put !tree key v;
       model := SMap.add key v !model;
       Hashtbl.add history key v
     done
   with Simdisk.Faults.Crash_point _ -> crashed := true);
  tree := Blsm.Tree.crash_and_recover ~verify:true !tree;
  (match durability with
  | Pagestore.Wal.Full -> check_model ~what:"matrix Full" !tree !model
  | Pagestore.Wal.Degraded | Pagestore.Wal.None_ ->
      let rows = Blsm.Tree.scan !tree "" 100_000 in
      List.iter
        (fun (k, v) ->
          if Blsm.Tree.get !tree k <> Some v then
            Alcotest.failf "matrix: scan and get disagree on %s" k;
          if not (List.mem v (Hashtbl.find_all history k)) then
            Alcotest.failf "matrix: fabricated value for %s" k)
        rows);
  !crashed

let test_fault_matrix () =
  let fired = ref 0 in
  List.iter
    (fun (scheduler, snowshovel) ->
      List.iter
        (fun durability ->
          List.iter
            (fun seed ->
              if matrix_case ~scheduler ~snowshovel ~durability ~seed then
                incr fired)
            [ 1; 2; 3 ])
        [ Pagestore.Wal.Full; Pagestore.Wal.Degraded; Pagestore.Wal.None_ ])
    [ (Blsm.Config.Spring, true); (Blsm.Config.Gear, false) ];
  (* the plans must actually be firing mid-merge, not expiring unused *)
  Alcotest.(check bool) "crash points fired across the matrix" true
    (!fired >= 6)

let () =
  Alcotest.run "faults"
    [
      ( "scenario",
        [
          Alcotest.test_case "acceptance: torn wal + mid-merge crash + bit rot"
            `Quick test_acceptance_scenario;
          Alcotest.test_case "bit flip -> rebuild from WAL" `Quick
            test_bitflip_rebuild_from_wal;
          Alcotest.test_case "bit flip -> quarantine (uncovered)" `Quick
            test_bitflip_quarantine;
          Alcotest.test_case "bloom rot is masked" `Quick test_bloom_rot_masked;
        ] );
      ( "wal",
        [
          Alcotest.test_case "degraded group-commit window" `Quick
            test_degraded_group_commit_window;
          Alcotest.test_case "mid-log rot is fatal and typed" `Quick
            test_wal_midlog_rot_fatal;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_torn_tail_acked_prefix;
          QCheck_alcotest.to_alcotest prop_bitflip_never_silent;
        ] );
      ("matrix", [ Alcotest.test_case "scheduler x durability" `Quick test_fault_matrix ]);
    ]
