(* Failure injection: crash the bLSM tree at randomized points in random
   workloads and verify recovery invariants.

   Durability contract under Full durability with group commit (§4.4.2,
   §5.1): every completed write is in the WAL or in a committed component,
   so recovery must reproduce the exact pre-crash logical state - here
   checked against a Map model. Under None_ durability, recovery must
   yield a consistent prefix: exactly the state covered by committed
   components (no torn merges, no resurrection of deleted keys). Also:
   repeated crashes, crash-during-recovery-adjacent flows, WAL replay
   idempotence, and binary-key robustness across the whole stack. *)

module SMap = Map.Make (String)

let mk_store ?(durability = Pagestore.Wal.Full) () =
  Pagestore.Store.create
    ~config:
      { Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = 128;
        cfg_durability = durability }
    Simdisk.Profile.ssd_raid0

let small_config ?(scheduler = Blsm.Config.Spring) ?(snowshovel = true) () =
  {
    Blsm.Config.default with
    Blsm.Config.c0_bytes = 24 * 1024;
    size_ratio = Blsm.Config.Fixed 3.0;
    extent_pages = 8;
    scheduler;
    snowshovel;
    max_quota_per_write = 128 * 1024;
  }

(* Apply [ops] random operations, crashing after a prefix of [crash_at];
   verify the recovered tree equals the model at the crash point. *)
let crash_test ~seed ~ops ~crash_at ~scheduler ~snowshovel =
  let tree =
    ref (Blsm.Tree.create ~config:(small_config ~scheduler ~snowshovel ()) (mk_store ()))
  in
  let model = ref SMap.empty in
  let prng = Repro_util.Prng.of_int seed in
  let apply i =
    let key = Printf.sprintf "key%04d" (Repro_util.Prng.int prng 200) in
    match Repro_util.Prng.int prng 6 with
    | 0 | 1 | 2 ->
        let v = Printf.sprintf "v%d-%s" i (String.make 60 'x') in
        Blsm.Tree.put !tree key v;
        model := SMap.add key v !model
    | 3 ->
        Blsm.Tree.delete !tree key;
        model := SMap.remove key !model
    | 4 ->
        let d = Printf.sprintf "+%d" i in
        Blsm.Tree.apply_delta !tree key d;
        model :=
          SMap.update key
            (function Some v -> Some (v ^ d) | None -> Some d)
            !model
    | _ -> ignore (Blsm.Tree.get !tree key)
  in
  for i = 0 to ops - 1 do
    apply i;
    if i = crash_at then tree := Blsm.Tree.crash_and_recover !tree
  done;
  (* the recovered tree must match the model exactly *)
  let ok = ref true in
  SMap.iter
    (fun k v -> if Blsm.Tree.get !tree k <> Some v then ok := false)
    !model;
  let all = Blsm.Tree.scan !tree "" 100_000 in
  !ok && all = SMap.bindings !model

let prop_crash_anywhere =
  QCheck.Test.make ~name:"crash at random op preserves all writes (Full)"
    ~count:30
    QCheck.(pair small_int (int_range 0 999))
    (fun (seed, crash_at) ->
      crash_test ~seed:(seed + 1) ~ops:1000 ~crash_at ~scheduler:Blsm.Config.Spring
        ~snowshovel:true)

let prop_crash_anywhere_gear =
  QCheck.Test.make ~name:"crash at random op preserves all writes (gear)"
    ~count:15
    QCheck.(pair small_int (int_range 0 999))
    (fun (seed, crash_at) ->
      crash_test ~seed:(seed + 500) ~ops:1000 ~crash_at ~scheduler:Blsm.Config.Gear
        ~snowshovel:false)

let test_repeated_crashes () =
  let tree = ref (Blsm.Tree.create ~config:(small_config ()) (mk_store ())) in
  let model = ref SMap.empty in
  let prng = Repro_util.Prng.of_int 77 in
  for round = 0 to 9 do
    for i = 0 to 299 do
      let key = Printf.sprintf "k%03d" (Repro_util.Prng.int prng 150) in
      let v = Printf.sprintf "r%d-%d" round i in
      Blsm.Tree.put !tree key v;
      model := SMap.add key v !model
    done;
    tree := Blsm.Tree.crash_and_recover !tree
  done;
  SMap.iter
    (fun k v ->
      if Blsm.Tree.get !tree k <> Some v then
        Alcotest.failf "key %s wrong after 10 crash cycles" k)
    !model

let test_crash_before_any_write () =
  let tree = Blsm.Tree.create ~config:(small_config ()) (mk_store ()) in
  let tree = Blsm.Tree.crash_and_recover tree in
  Alcotest.(check (option string)) "empty" None (Blsm.Tree.get tree "x");
  Blsm.Tree.put tree "x" "works";
  Alcotest.(check (option string)) "writable" (Some "works") (Blsm.Tree.get tree "x")

let test_none_durability_prefix_consistency () =
  (* without logging, recovery lands on the last committed merge: a
     *consistent* earlier state - never a torn one *)
  let store = mk_store ~durability:Pagestore.Wal.None_ () in
  let tree = Blsm.Tree.create ~config:(small_config ()) store in
  for i = 0 to 1999 do
    Blsm.Tree.put tree (Printf.sprintf "k%05d" i) (String.make 100 'v')
  done;
  let tree' = Blsm.Tree.crash_and_recover tree in
  (* whatever survived must be internally consistent: scan = point gets *)
  let rows = Blsm.Tree.scan tree' "" 100_000 in
  List.iter
    (fun (k, v) ->
      match Blsm.Tree.get tree' k with
      | Some v' when v' = v -> ()
      | _ -> Alcotest.failf "scan/get disagree on %s" k)
    rows;
  (* and it must be a *prefix* of the insertion order per merge commits:
     every surviving record has the value we wrote (no corruption) *)
  List.iter
    (fun (k, v) ->
      if String.length v <> 100 then Alcotest.failf "torn value for %s" k)
    rows

let test_wal_replay_idempotent_state () =
  (* two successive crashes with no writes in between must yield the same
     state: replay does not duplicate or reorder effects *)
  let tree = Blsm.Tree.create ~config:(small_config ()) (mk_store ()) in
  Blsm.Tree.put tree "a" "1";
  Blsm.Tree.apply_delta tree "a" "+2";
  Blsm.Tree.delete tree "b";
  Blsm.Tree.put tree "c" "3";
  let t1 = Blsm.Tree.crash_and_recover tree in
  let state1 = Blsm.Tree.scan t1 "" 1000 in
  let t2 = Blsm.Tree.crash_and_recover t1 in
  let state2 = Blsm.Tree.scan t2 "" 1000 in
  if state1 <> state2 then Alcotest.fail "replay not idempotent";
  Alcotest.(check (option string)) "delta preserved" (Some "1+2") (Blsm.Tree.get t2 "a")

(* ------------------------------------------------------------------ *)
(* Crash points inside merge commits and memtable flushes, via the fault
   scheduler: power loss no longer lands only between operations but in
   the middle of component writes. Full durability must still recover the
   exact acked state (§4.4.2: uncommitted merge output rolls back). *)

let test_crash_inside_merge_commit () =
  let store = mk_store () in
  let plan = Simdisk.Faults.create ~seed:99 () in
  Pagestore.Store.set_faults store plan;
  let tree = ref (Blsm.Tree.create ~config:(small_config ()) store) in
  let model = ref SMap.empty in
  let prng = Repro_util.Prng.of_int 5 in
  let crashes = ref 0 in
  for round = 0 to 5 do
    (* tear the in-flight page on even rounds, lose power cleanly on odd *)
    Simdisk.Faults.schedule_crash_at_page_write ~torn:(round mod 2 = 0) plan
      ~after:(5 + (7 * round));
    try
      for i = 0 to 499 do
        let key = Printf.sprintf "k%03d" (Repro_util.Prng.int prng 600) in
        if Repro_util.Prng.int prng 5 = 0 then begin
          Blsm.Tree.delete !tree key;
          model := SMap.remove key !model
        end
        else begin
          let v = Printf.sprintf "r%d-%d-%s" round i (String.make 50 'c') in
          Blsm.Tree.put !tree key v;
          model := SMap.add key v !model
        end
      done
    with Simdisk.Faults.Crash_point _ ->
      incr crashes;
      tree := Blsm.Tree.crash_and_recover ~verify:true !tree
  done;
  Simdisk.Faults.clear plan;
  Blsm.Tree.flush !tree;
  SMap.iter
    (fun k v ->
      if Blsm.Tree.get !tree k <> Some v then
        Alcotest.failf "key %s wrong after mid-merge crashes" k)
    !model;
  if Blsm.Tree.scan !tree "" 100_000 <> SMap.bindings !model then
    Alcotest.fail "scan disagrees with model after mid-merge crashes";
  Alcotest.(check bool) "crash points actually fired mid-merge" true
    (!crashes >= 3)

let test_crash_inside_memtable_flush () =
  (* gear mode: C0 freezes into C0' and drains; kill the machine inside
     the flush's page writes *)
  let store = mk_store () in
  let plan = Simdisk.Faults.create ~seed:7 () in
  Pagestore.Store.set_faults store plan;
  let tree =
    ref
      (Blsm.Tree.create
         ~config:(small_config ~scheduler:Blsm.Config.Gear ~snowshovel:false ())
         store)
  in
  let model = ref SMap.empty in
  for i = 0 to 199 do
    let key = Printf.sprintf "k%03d" i in
    let v = Printf.sprintf "v%d-%s" i (String.make 40 'f') in
    Blsm.Tree.put !tree key v;
    model := SMap.add key v !model
  done;
  Simdisk.Faults.schedule_crash_at_page_write ~torn:true plan ~after:3;
  (match Blsm.Tree.flush !tree with
  | () -> Alcotest.fail "flush should have hit the crash point"
  | exception Simdisk.Faults.Crash_point _ -> ());
  tree := Blsm.Tree.crash_and_recover ~verify:true !tree;
  SMap.iter
    (fun k v ->
      if Blsm.Tree.get !tree k <> Some v then
        Alcotest.failf "key %s wrong after mid-flush crash" k)
    !model;
  (* and the interrupted flush completes cleanly afterwards *)
  Blsm.Tree.flush !tree;
  if Blsm.Tree.scan !tree "" 100_000 <> SMap.bindings !model then
    Alcotest.fail "scan disagrees with model after re-flush"

(* ------------------------------------------------------------------ *)
(* Binary keys and values through the whole stack *)

let arb_binary_key =
  (* keys with NULs, 0xFF, empty-ish, and long runs *)
  QCheck.Gen.(
    oneof
      [
        map (fun l -> String.concat "" l)
          (list_size (1 -- 12)
             (oneof
                [
                  return "\000";
                  return "\255";
                  return "\001";
                  map (String.make 1) (char_range 'a' 'z');
                ]));
        map Bytes.unsafe_to_string
          (map (fun l -> Bytes.of_string (String.concat "" (List.map (String.make 1) l)))
             (list_size (1 -- 30) (map Char.chr (0 -- 255))));
      ])

let prop_binary_keys =
  QCheck.Test.make ~name:"binary keys survive merges, scans, recovery" ~count:40
    (QCheck.make
       QCheck.Gen.(list_size (1 -- 60) (pair arb_binary_key (string_size (0 -- 80)))))
    (fun pairs ->
      (* nonempty keys only: the tree treats keys as opaque but nonempty *)
      let pairs = List.filter (fun (k, _) -> k <> "") pairs in
      QCheck.assume (pairs <> []);
      let tree = Blsm.Tree.create ~config:(small_config ()) (mk_store ()) in
      let model =
        List.fold_left
          (fun m (k, v) ->
            Blsm.Tree.put tree k v;
            SMap.add k v m)
          SMap.empty pairs
      in
      Blsm.Tree.flush tree;
      let tree = Blsm.Tree.crash_and_recover tree in
      SMap.for_all (fun k v -> Blsm.Tree.get tree k = Some v) model
      && Blsm.Tree.scan tree "" 10_000 = SMap.bindings model)

let prop_binary_keys_sstable =
  QCheck.Test.make ~name:"sstable roundtrip with binary keys" ~count:60
    (QCheck.make
       QCheck.Gen.(list_size (1 -- 40) (pair arb_binary_key (string_size (0 -- 50)))))
    (fun pairs ->
      let pairs = List.filter (fun (k, _) -> k <> "") pairs in
      QCheck.assume (pairs <> []);
      let module M = Map.Make (String) in
      let m =
        List.fold_left (fun m (k, v) -> M.add k (Kv.Entry.Base v) m) M.empty pairs
      in
      let store = mk_store () in
      let b = Sstable.Builder.create ~extent_pages:4 store in
      M.iter (fun k e -> Sstable.Builder.add b k e) m;
      let footer = Sstable.Builder.finish b ~timestamp:1 in
      let sst =
        Sstable.Reader.open_in_ram store footer ~index:(Sstable.Builder.index_blob b)
      in
      M.for_all (fun k e -> Sstable.Reader.get sst k = Some e) m)

let () =
  Alcotest.run "crash"
    [
      ( "recovery",
        [
          QCheck_alcotest.to_alcotest prop_crash_anywhere;
          QCheck_alcotest.to_alcotest prop_crash_anywhere_gear;
          Alcotest.test_case "repeated crashes" `Quick test_repeated_crashes;
          Alcotest.test_case "crash before writes" `Quick test_crash_before_any_write;
          Alcotest.test_case "None_ durability prefix" `Quick test_none_durability_prefix_consistency;
          Alcotest.test_case "replay idempotent" `Quick test_wal_replay_idempotent_state;
        ] );
      ( "crash_points",
        [
          Alcotest.test_case "crash inside merge commit" `Quick
            test_crash_inside_merge_commit;
          Alcotest.test_case "crash inside memtable flush" `Quick
            test_crash_inside_memtable_flush;
        ] );
      ( "binary_keys",
        [
          QCheck_alcotest.to_alcotest prop_binary_keys;
          QCheck_alcotest.to_alcotest prop_binary_keys_sstable;
        ] );
    ]
