(* Simnet unit tests: seeded latency and delivery on the simulated
   clock, per-link ordinal fault plans (drop / duplicate / delay /
   delay-burst / reorder), partitions and healing, request/response
   calls with timeouts and stray accounting, fault-plan bookkeeping,
   and same-seed determinism of the whole transcript. *)

let check = Alcotest.check

let mk ?(seed = 42) () = Simnet.create ~seed ()

(* an endpoint that records every datagram it receives, in order *)
let recorder net name =
  let log = ref [] in
  let ep = Simnet.endpoint net name in
  Simnet.set_handler ep (fun ~src body ->
      log := (src, body) :: !log;
      None);
  (ep, fun () -> List.rev !log)

let test_datagram_delivery () =
  let net = mk () in
  let a = Simnet.endpoint net "a" in
  let _b, got = recorder net "b" in
  Simnet.send a ~dst:"b" "hello";
  Simnet.sleep net 1_000;
  check
    Alcotest.(list (pair string string))
    "delivered with source" [ ("a", "hello") ] (got ());
  let c = Simnet.counters net in
  check Alcotest.int "sent" 1 c.Simnet.sent;
  check Alcotest.int "delivered" 1 c.Simnet.delivered

let test_call_roundtrip () =
  let net = mk () in
  let a = Simnet.endpoint net "a" in
  let b = Simnet.endpoint net "b" in
  Simnet.set_handler b (fun ~src body -> Some (src ^ ":" ^ body));
  (match Simnet.call a ~dst:"b" ~timeout_us:10_000 "ping" with
  | Some "a:ping" -> ()
  | Some other -> Alcotest.failf "wrong reply %S" other
  | None -> Alcotest.fail "call timed out on a healthy link");
  let c = Simnet.counters net in
  check Alcotest.int "calls" 1 c.Simnet.calls;
  check Alcotest.int "no timeouts" 0 c.Simnet.call_timeouts

let test_drop_ordinal () =
  let net = mk () in
  let a = Simnet.endpoint net "a" in
  let _b, got = recorder net "b" in
  (* after:2 — the 2nd send on a->b counted from arming is dropped *)
  Simnet.schedule_drop net ~src:"a" ~dst:"b" ~after:2;
  Simnet.send a ~dst:"b" "m1";
  Simnet.send a ~dst:"b" "m2";
  Simnet.send a ~dst:"b" "m3";
  Simnet.sleep net 2_000;
  check
    Alcotest.(list string)
    "second message lost" [ "m1"; "m3" ]
    (List.map snd (got ()));
  check Alcotest.int "dropped" 1 (Simnet.counters net).Simnet.dropped

let test_duplicate () =
  let net = mk () in
  let a = Simnet.endpoint net "a" in
  let _b, got = recorder net "b" in
  Simnet.schedule_duplicate net ~src:"a" ~dst:"b" ~after:1;
  Simnet.send a ~dst:"b" "once";
  Simnet.sleep net 2_000;
  check
    Alcotest.(list string)
    "delivered twice" [ "once"; "once" ]
    (List.map snd (got ()));
  check Alcotest.int "duplicated" 1 (Simnet.counters net).Simnet.duplicated

let test_delay_and_burst () =
  let net = mk () in
  let a = Simnet.endpoint net "a" in
  let _b, got = recorder net "b" in
  Simnet.schedule_delay net ~src:"a" ~dst:"b" ~after:1 ~extra_us:5_000;
  Simnet.send a ~dst:"b" "slow";
  (* normal latency is ~100-150us; after 1ms the delayed message is
     still in flight *)
  Simnet.sleep net 1_000;
  check Alcotest.(list string) "still in flight" [] (List.map snd (got ()));
  Simnet.sleep net 6_000;
  check Alcotest.(list string) "eventually arrives" [ "slow" ]
    (List.map snd (got ()));
  check Alcotest.int "delayed" 1 (Simnet.counters net).Simnet.delayed;
  (* a burst slows a run of consecutive messages *)
  Simnet.schedule_delay_burst net ~src:"a" ~dst:"b" ~after:1 ~count:3
    ~extra_us:2_000;
  Simnet.send a ~dst:"b" "x1";
  Simnet.send a ~dst:"b" "x2";
  Simnet.send a ~dst:"b" "x3";
  Simnet.sleep net 10_000;
  check Alcotest.int "burst delays each message" 4
    (Simnet.counters net).Simnet.delayed

let test_reorder () =
  let net = mk () in
  let a = Simnet.endpoint net "a" in
  let _b, got = recorder net "b" in
  Simnet.schedule_reorder net ~src:"a" ~dst:"b" ~after:1;
  Simnet.send a ~dst:"b" "first-sent";
  Simnet.send a ~dst:"b" "second-sent";
  Simnet.sleep net 5_000;
  check
    Alcotest.(list string)
    "later message overtakes" [ "second-sent"; "first-sent" ]
    (List.map snd (got ()));
  check Alcotest.int "reordered" 1 (Simnet.counters net).Simnet.reordered

let test_partition_and_heal () =
  let net = mk () in
  let a = Simnet.endpoint net "a" in
  let b = Simnet.endpoint net "b" in
  Simnet.set_handler b (fun ~src:_ body -> Some body);
  Simnet.partition net "a" "b";
  if not (Simnet.partitioned net "a" "b") then
    Alcotest.fail "partition not recorded";
  if not (Simnet.partitioned net "b" "a") then
    Alcotest.fail "partition must be symmetric";
  (match Simnet.call a ~dst:"b" ~timeout_us:5_000 "ping" with
  | None -> ()
  | Some _ -> Alcotest.fail "call crossed a partition");
  let c = Simnet.counters net in
  if c.Simnet.partition_drops < 1 then Alcotest.fail "drop not attributed";
  check Alcotest.int "timeout counted" 1 c.Simnet.call_timeouts;
  Simnet.heal net "a" "b";
  if Simnet.partitioned net "a" "b" then Alcotest.fail "heal did not stick";
  (match Simnet.call a ~dst:"b" ~timeout_us:5_000 "again" with
  | Some "again" -> ()
  | _ -> Alcotest.fail "call failed after heal")

let test_unhandled_request_is_stray () =
  let net = mk () in
  let a = Simnet.endpoint net "a" in
  let _b = Simnet.endpoint net "b" in
  (* no handler on b: the request lands as a stray and the call times
     out rather than erroring *)
  (match Simnet.call a ~dst:"b" ~timeout_us:3_000 "anyone?" with
  | None -> ()
  | Some _ -> Alcotest.fail "reply from a handlerless endpoint");
  let c = Simnet.counters net in
  if c.Simnet.strays < 1 then Alcotest.fail "stray not counted";
  check Alcotest.int "timeout counted" 1 c.Simnet.call_timeouts

let test_fault_bookkeeping () =
  let net = mk () in
  Simnet.schedule_drop net ~src:"a" ~dst:"b" ~after:3;
  Simnet.schedule_duplicate net ~src:"b" ~dst:"a" ~after:1;
  Simnet.schedule_delay net ~src:"a" ~dst:"b" ~after:2 ~extra_us:1_000;
  Simnet.partition net "a" "b";
  if Simnet.pending_faults net < 3 then
    Alcotest.fail "pending plans not counted";
  Simnet.clear_faults net;
  check Alcotest.int "plans cleared" 0 (Simnet.pending_faults net);
  if Simnet.partitioned net "a" "b" then
    Alcotest.fail "clear_faults must heal partitions"

(* same seed, same script => byte-identical transcript *)
let test_same_seed_determinism () =
  let transcript seed =
    let net = Simnet.create ~seed () in
    let a = Simnet.endpoint net "a" in
    let b = Simnet.endpoint net "b" in
    let log = Buffer.create 256 in
    Simnet.set_handler b (fun ~src:_ body -> Some ("r:" ^ body));
    Simnet.schedule_delay net ~src:"a" ~dst:"b" ~after:2 ~extra_us:2_000;
    Simnet.schedule_duplicate net ~src:"b" ~dst:"a" ~after:1;
    for i = 0 to 9 do
      match
        Simnet.call a ~dst:"b" ~timeout_us:8_000 (Printf.sprintf "m%d" i)
      with
      | Some r -> Buffer.add_string log (Printf.sprintf "%s@%.0f;" r (Simnet.now_us net))
      | None -> Buffer.add_string log (Printf.sprintf "timeout@%.0f;" (Simnet.now_us net))
    done;
    let c = Simnet.counters net in
    Buffer.add_string log
      (Printf.sprintf "sent=%d delivered=%d delayed=%d duplicated=%d strays=%d timeouts=%d"
         c.Simnet.sent c.Simnet.delivered c.Simnet.delayed
         c.Simnet.duplicated c.Simnet.strays c.Simnet.call_timeouts);
    Buffer.contents log
  in
  check Alcotest.string "seed 7 reproducible" (transcript 7) (transcript 7);
  check Alcotest.string "seed 8 reproducible" (transcript 8) (transcript 8)

let () =
  Alcotest.run "simnet"
    [
      ( "simnet",
        [
          Alcotest.test_case "datagram delivery" `Quick test_datagram_delivery;
          Alcotest.test_case "call roundtrip" `Quick test_call_roundtrip;
          Alcotest.test_case "drop ordinal" `Quick test_drop_ordinal;
          Alcotest.test_case "duplicate" `Quick test_duplicate;
          Alcotest.test_case "delay + burst" `Quick test_delay_and_burst;
          Alcotest.test_case "reorder" `Quick test_reorder;
          Alcotest.test_case "partition/heal" `Quick test_partition_and_heal;
          Alcotest.test_case "stray request" `Quick
            test_unhandled_request_is_stray;
          Alcotest.test_case "fault bookkeeping" `Quick test_fault_bookkeeping;
          Alcotest.test_case "same-seed determinism" `Quick
            test_same_seed_determinism;
        ] );
    ]
