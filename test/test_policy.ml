(* Compaction-policy suite (ISSUE 9):
   - QCheck property per policy: after any seeded op sequence the level
     shape satisfies the policy's structural invariant (tiered: <= T
     runs per tier; leveled: one run per level within size bounds;
     partial: key-disjoint files per level), and get/scan agree with the
     DST sorted-map oracle;
   - differential test: the same seeded workload under all four
     policies plus the seed snowshovel (the spring-paced bLSM tree)
     yields identical logical contents, pinned at 3 seeds;
   - crash safety: recovery mid-sequence preserves oracle agreement and
     the structural invariant. *)

let policies = [ "tiered"; "leveled"; "lazy-leveled"; "partial" ]

let driver_names =
  "blsm" :: List.map (fun p -> "policy-" ^ p) policies

let gen_key prng = Printf.sprintf "key%03d" (Repro_util.Prng.int prng 200)

(* --- satellite 1: structural invariant + oracle agreement ---------- *)

(* Drive a Policy_tree directly (the driver surface hides
   [check_invariant]) against the DST oracle, with flushes and
   maintenance interleaved so runs actually pile up and merge. *)
let run_structural ~policy_name ~seed ~n =
  let store, _ = Dst.Driver.mk_store ~fault_seed:seed () in
  let policy = Option.get (Blsm.Compaction_policy.of_name policy_name) in
  let t =
    Blsm.Policy_tree.create
      ~config:(Dst.Driver.small_config seed)
      ~pconfig:Dst.Driver.small_pconfig ~policy store
  in
  let oracle = Dst.Oracle.create () in
  let prng = Repro_util.Prng.of_int (seed lxor 0x9E37) in
  for i = 1 to n do
    let k = gen_key prng in
    (match Repro_util.Prng.int prng 10 with
    | 0 | 1 | 2 | 3 | 4 ->
        let v = Printf.sprintf "v%d-%s" i (String.make 24 'p') in
        Blsm.Policy_tree.put t k v;
        Dst.Oracle.put oracle k v
    | 5 ->
        Blsm.Policy_tree.delete t k;
        Dst.Oracle.delete oracle k
    | 6 ->
        let d = Printf.sprintf "+%d" i in
        Blsm.Policy_tree.apply_delta t k d;
        Dst.Oracle.delta oracle k d
    | 7 ->
        let f = Dst.Driver.append_rmw "r" in
        Blsm.Policy_tree.read_modify_write t k f;
        Dst.Oracle.read_modify_write oracle k f
    | 8 ->
        let got = Blsm.Policy_tree.get t k in
        let want = Dst.Oracle.get oracle k in
        if got <> want then
          Alcotest.failf "%s seed %d op %d: get %s = %s, oracle %s"
            policy_name seed i k
            (Option.value got ~default:"<none>")
            (Option.value want ~default:"<none>")
    | _ ->
        let len = 1 + Repro_util.Prng.int prng 8 in
        let got = Blsm.Policy_tree.scan t k len in
        let want = Dst.Oracle.scan oracle k len in
        if got <> want then
          Alcotest.failf "%s seed %d op %d: scan %s %d diverges (%d vs %d)"
            policy_name seed i k len (List.length got) (List.length want));
    if i mod 40 = 0 then Blsm.Policy_tree.flush t;
    if i mod 150 = 0 then begin
      Blsm.Policy_tree.maintenance t;
      match Blsm.Policy_tree.check_invariant t with
      | Some err ->
          Alcotest.failf "%s seed %d op %d: structural invariant: %s"
            policy_name seed i err
      | None -> ()
    end
  done;
  Blsm.Policy_tree.maintenance t;
  (match Blsm.Policy_tree.check_invariant t with
  | Some err ->
      Alcotest.failf "%s seed %d: final structural invariant: %s" policy_name
        seed err
  | None -> ());
  (* settled shape still serves every binding *)
  let final = Blsm.Policy_tree.scan t "" 10_000 in
  if final <> Dst.Oracle.bindings oracle then
    Alcotest.failf "%s seed %d: scan-all disagrees with oracle (%d vs %d)"
      policy_name seed (List.length final)
      (Dst.Oracle.cardinal oracle);
  for _ = 1 to 50 do
    let k = gen_key prng in
    if Blsm.Policy_tree.get t k <> Dst.Oracle.get oracle k then
      Alcotest.failf "%s seed %d: settled get %s diverges" policy_name seed k
  done

let prop_structural policy_name =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: structural invariant + oracle match" policy_name)
    ~count:6 QCheck.small_int (fun seed ->
      run_structural ~policy_name ~seed:(seed + 7000) ~n:500;
      true)

(* --- satellite 2: cross-policy differential at pinned seeds -------- *)

type op =
  | Put of string * string
  | Delete of string
  | Delta of string * string
  | Rmw of string
  | Ifabsent of string * string
  | Get of string
  | Scan of string * int
  | Batch of (string * Kv.Entry.t) list

let gen_ops seed n =
  let prng = Repro_util.Prng.of_int seed in
  List.init n (fun i ->
      let key = gen_key prng in
      match Repro_util.Prng.int prng 12 with
      | 0 | 1 | 2 | 3 -> Put (key, Printf.sprintf "v%d-%s" i (String.make 32 'q'))
      | 4 -> Delete key
      | 5 -> Delta (key, Printf.sprintf "+%d" i)
      | 6 -> Rmw key
      | 7 -> Ifabsent (key, Printf.sprintf "ia%d" i)
      | 8 -> Get key
      | 9 | 10 -> Scan (key, 1 + Repro_util.Prng.int prng 8)
      | _ ->
          Batch
            (List.init
               (1 + Repro_util.Prng.int prng 5)
               (fun j ->
                 let k = gen_key prng in
                 if Repro_util.Prng.int prng 5 = 0 then (k, Kv.Entry.Tombstone)
                 else (k, Kv.Entry.Base (Printf.sprintf "b%d.%d" i j)))))

let apply (d : Dst.Driver.t) = function
  | Put (k, v) ->
      d.Dst.Driver.put k v;
      ""
  | Delete k ->
      d.Dst.Driver.delete k;
      ""
  | Delta (k, dl) ->
      d.Dst.Driver.apply_delta k dl;
      ""
  | Rmw k ->
      d.Dst.Driver.rmw k "r";
      ""
  | Ifabsent (k, v) -> string_of_bool (d.Dst.Driver.insert_if_absent k v)
  | Get k -> Option.value (d.Dst.Driver.get k) ~default:"<none>"
  | Scan (k, n) ->
      d.Dst.Driver.scan k n
      |> List.map (fun (k, v) -> k ^ "=" ^ v)
      |> String.concat ";"
  | Batch entries ->
      d.Dst.Driver.write_batch entries;
      ""

let apply_oracle o = function
  | Put (k, v) ->
      Dst.Oracle.put o k v;
      ""
  | Delete k ->
      Dst.Oracle.delete o k;
      ""
  | Delta (k, dl) ->
      Dst.Oracle.delta o k dl;
      ""
  | Rmw k ->
      Dst.Oracle.read_modify_write o k (Dst.Driver.append_rmw "r");
      ""
  | Ifabsent (k, v) -> string_of_bool (Dst.Oracle.insert_if_absent o k v)
  | Get k -> Option.value (Dst.Oracle.get o k) ~default:"<none>"
  | Scan (k, n) ->
      Dst.Oracle.scan o k n
      |> List.map (fun (k, v) -> k ^ "=" ^ v)
      |> String.concat ";"
  | Batch entries ->
      List.iter (fun (k, e) -> Dst.Oracle.apply_entry o k e) entries;
      ""

(* Same workload through the seed snowshovel and all four policy trees:
   every per-op observation and the final scan-all must agree with the
   shared oracle (and therefore with each other). *)
let run_differential seed n =
  let ops = gen_ops seed n in
  let oracle = Dst.Oracle.create () in
  let expected = List.map (apply_oracle oracle) ops in
  List.iter
    (fun name ->
      let d = Dst.Driver.make_exn name ~seed () in
      List.iteri
        (fun i (op, want) ->
          let got = apply d op in
          if got <> want then
            Alcotest.failf "op %d on %s: engine=%S oracle=%S" i name got want)
        (List.combine ops expected);
      d.Dst.Driver.maintenance ();
      let final = d.Dst.Driver.scan "" 10_000 in
      if final <> Dst.Oracle.bindings oracle then
        Alcotest.failf
          "final contents on %s disagree with oracle (%d vs %d rows)" name
          (List.length final)
          (Dst.Oracle.cardinal oracle))
    driver_names

let test_diff_seed s () = run_differential s 1200

(* --- crash mid-sequence keeps the policies honest ------------------ *)

let test_crash_recovery policy_name () =
  let seed = 2024 in
  let store, _ = Dst.Driver.mk_store ~fault_seed:seed () in
  let policy = Option.get (Blsm.Compaction_policy.of_name policy_name) in
  let t =
    ref
      (Blsm.Policy_tree.create
         ~config:(Dst.Driver.small_config seed)
         ~pconfig:Dst.Driver.small_pconfig ~policy store)
  in
  let oracle = Dst.Oracle.create () in
  let prng = Repro_util.Prng.of_int (seed lxor 0xC4A5) in
  for i = 1 to 600 do
    let k = gen_key prng in
    let v = Printf.sprintf "c%d" i in
    Blsm.Policy_tree.put !t k v;
    Dst.Oracle.put oracle k v;
    if i mod 97 = 0 then t := Blsm.Policy_tree.crash_and_recover ~verify:true !t
  done;
  Blsm.Policy_tree.maintenance !t;
  (match Blsm.Policy_tree.check_invariant !t with
  | Some err -> Alcotest.failf "%s: invariant after crashes: %s" policy_name err
  | None -> ());
  let final = Blsm.Policy_tree.scan !t "" 10_000 in
  Alcotest.(check int)
    (policy_name ^ ": rows survive crashes")
    (Dst.Oracle.cardinal oracle)
    (List.length final);
  if final <> Dst.Oracle.bindings oracle then
    Alcotest.failf "%s: contents diverge after crashes" policy_name;
  Alcotest.(check bool)
    (policy_name ^ ": recoveries counted")
    true
    ((Blsm.Policy_tree.stats !t).Blsm.Policy_tree.recoveries >= 6)

let () =
  Alcotest.run "policy"
    [
      ( "structural",
        List.map (fun p -> QCheck_alcotest.to_alcotest (prop_structural p))
          policies );
      ( "differential",
        [
          Alcotest.test_case "seed 11" `Quick (test_diff_seed 11);
          Alcotest.test_case "seed 23" `Quick (test_diff_seed 23);
          Alcotest.test_case "seed 47" `Quick (test_diff_seed 47);
        ] );
      ( "crash",
        List.map
          (fun p ->
            Alcotest.test_case (p ^ " recovery") `Quick (test_crash_recovery p))
          policies );
    ]
