(* Tests for blsm-lint (lib/lint): every rule has at least one failing
   and one passing fixture in test/lint_fixtures/, and the two
   suppression mechanisms — scoped [@lint.allow] attributes and the
   checked-in baseline — are exercised end to end. *)

let check = Alcotest.check

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Lint a fixture file under a chosen logical path: the path's directory
   is what rule A001 judges, so the same fixture can be tested from
   inside and outside an allowed directory. *)
let lint ~path fixture =
  Lint.Rules.lint_source ~config:Lint.Config.default ~path
    (read_file (Filename.concat "lint_fixtures" fixture))

let rules_of findings = List.map (fun f -> f.Lint.Finding.rule) findings

let slist = Alcotest.(list string)

(* ------------------------------------------------------------------ *)
(* Per-rule fixtures *)

let test_d001_bad () =
  check slist "five nondeterminism sources"
    [ "D001"; "D001"; "D001"; "D001"; "D001" ]
    (rules_of (lint ~path:"bench/d001_bad.ml" "d001_bad.ml"))

let test_d001_ok () =
  check slist "seeded PRNGs pass" []
    (rules_of (lint ~path:"bench/d001_ok.ml" "d001_ok.ml"))

let test_d002_bad () =
  check slist "iter and fold both flagged" [ "D002"; "D002" ]
    (rules_of (lint ~path:"lib/util/d002_bad.ml" "d002_bad.ml"))

let test_d002_ok () =
  check slist "sorted-keys probe passes" []
    (rules_of (lint ~path:"lib/util/d002_ok.ml" "d002_ok.ml"))

let test_c001_bad () =
  check slist "bare compare, lambda compare, poly operator"
    [ "C001"; "C001"; "C001" ]
    (rules_of (lint ~path:"lib/core/c001_bad.ml" "c001_bad.ml"))

let test_c001_ok () =
  check slist "monomorphic comparators pass" []
    (rules_of (lint ~path:"lib/core/c001_ok.ml" "c001_ok.ml"))

let test_c002_bad () =
  check slist "try-catch-all and match-exception-catch-all"
    [ "C002"; "C002" ]
    (rules_of (lint ~path:"lib/core/c002_bad.ml" "c002_bad.ml"))

let test_c002_ok () =
  check slist "explicit exceptions and bind+reraise pass" []
    (rules_of (lint ~path:"lib/core/c002_ok.ml" "c002_ok.ml"))

let test_a001_bad () =
  check slist "platter internals from lib/memtable: expr, qualified, type"
    [ "A001"; "A001"; "A001" ]
    (rules_of (lint ~path:"lib/memtable/a001_bad.ml" "a001_bad.ml"))

let test_a001_allowed_dir () =
  check slist "same references are legal inside lib/pagestore" []
    (rules_of (lint ~path:"lib/pagestore/a001_bad.ml" "a001_bad.ml"))

let test_a001_ok () =
  check slist "the public Simdisk.Disk API is open to everyone" []
    (rules_of (lint ~path:"lib/core/a001_ok.ml" "a001_ok.ml"))

let test_a002_bad () =
  check slist "service module and WAL both flagged from a replication file"
    [ "A002"; "A002" ]
    (rules_of (lint ~path:"lib/core/replication.ml" "a002_bad.ml"))

let test_a002_non_replication_file () =
  check slist "same references are fine when the basename is not marked" []
    (rules_of (lint ~path:"lib/core/server_glue.ml" "a002_bad.ml"))

let test_a002_exempt_dir () =
  check slist "the transport layer itself is exempt" []
    (rules_of (lint ~path:"lib/simnet/replication_xport.ml" "a002_bad.ml"))

let test_a002_ok () =
  check slist "simnet + Repl_msg is the legal shape" []
    (rules_of (lint ~path:"lib/core/replication.ml" "a002_ok.ml"))

let test_p000 () =
  check slist "garbage does not parse" [ "P000" ]
    (rules_of (lint ~path:"lib/core/p000_bad.ml" "p000_bad.ml"))

(* ------------------------------------------------------------------ *)
(* Suppression: [@lint.allow] attributes *)

let test_suppress_attr () =
  check slist
    "expression, binding and floating allows silence their subtrees" []
    (rules_of (lint ~path:"bench/suppress_attr.ml" "suppress_attr.ml"))

let test_suppress_scope () =
  let fs = lint ~path:"bench/suppress_scope.ml" "suppress_scope.ml" in
  check slist "allow does not leak past its expression" [ "D001" ]
    (rules_of fs);
  check Alcotest.int "the unsuppressed site is the second binding" 4
    (List.hd fs).Lint.Finding.line

let test_suppress_wrong_rule () =
  (* an allow for a different rule must not silence anything *)
  let fs =
    Lint.Rules.lint_source ~config:Lint.Config.default
      ~path:"bench/inline.ml"
      "let now () = (Unix.gettimeofday [@lint.allow \"C001\"]) ()\n"
  in
  check slist "C001 allow does not cover D001" [ "D001" ] (rules_of fs)

let test_malformed_allow () =
  let fs =
    Lint.Rules.lint_source ~config:Lint.Config.default
      ~path:"bench/inline.ml"
      "let now () = (Unix.gettimeofday [@lint.allow 42]) ()\n"
  in
  check slist "malformed payload: L000 plus the undimmed D001"
    [ "D001"; "L000" ]
    (List.sort String.compare (rules_of fs))

(* ------------------------------------------------------------------ *)
(* Baseline mechanism *)

let test_baseline_filter () =
  let fs = lint ~path:"lib/core/c002_bad.ml" "c002_bad.ml" in
  check Alcotest.int "two findings to play with" 2 (List.length fs);
  let keys = List.map Lint.Finding.baseline_key fs in
  check Alcotest.int "full baseline absorbs everything" 0
    (List.length (Lint.Baseline.filter ~baseline:keys fs));
  check Alcotest.int "partial baseline leaves the rest" 1
    (List.length
       (Lint.Baseline.filter ~baseline:[ List.hd keys ] fs))

let test_baseline_is_multiset () =
  let f =
    Lint.Finding.make ~file:"x.ml" ~line:3 ~col:0 ~rule:"C002" "boom"
  in
  let dup =
    Lint.Baseline.filter
      ~baseline:[ Lint.Finding.baseline_key f ]
      [ f; { f with Lint.Finding.line = 9 } ]
  in
  check Alcotest.int
    "one baseline line absorbs exactly one identical finding" 1
    (List.length dup)

let test_baseline_roundtrip () =
  let fs = lint ~path:"lib/core/c002_bad.ml" "c002_bad.ml" in
  let path = Filename.temp_file "blsm_lint" ".baseline" in
  Lint.Baseline.save path fs;
  let keys = Lint.Baseline.load path in
  Sys.remove path;
  check Alcotest.int "comments stripped, one key per finding"
    (List.length fs) (List.length keys);
  check Alcotest.int "reloaded baseline absorbs the findings" 0
    (List.length (Lint.Baseline.filter ~baseline:keys fs))

let test_baseline_missing_file () =
  check Alcotest.int "missing baseline file is empty, not an error" 0
    (List.length (Lint.Baseline.load "lint_fixtures/no_such_baseline"))

(* ------------------------------------------------------------------ *)
(* S001 and the runner *)

let test_s001_tree () =
  let fs =
    Lint.Runner.run ~config:Lint.Config.default
      ~root:"lint_fixtures/s001_tree" [ "lib" ]
  in
  check slist "exactly the interface-less module is flagged" [ "S001" ]
    (rules_of fs);
  check Alcotest.string "and it is the right module" "lib/nodoc/widget.ml"
    (List.hd fs).Lint.Finding.file

(* The compaction-policy layer (ISSUE 9) must stay behind the same
   walls as the rest of lib/core: Platter access is pagestore/simdisk
   business (A001), and every policy module ships an interface (S001).
   These pin the *config* — the whole-tree `@lint` alias enforces the
   actual sources — so carving an exemption for the policy modules
   fails a test, not just a review. *)

let policy_modules =
  [ "lib/core/compaction_policy.ml"; "lib/core/policy_tree.ml" ]

let test_policy_platter_walled () =
  List.iter
    (fun path ->
      check slist
        (path ^ ": Platter references are flagged")
        [ "A001"; "A001"; "A001" ]
        (rules_of (lint ~path "a001_bad.ml")))
    policy_modules

let test_policy_mli_required () =
  (* without interfaces: one S001 per policy module *)
  check Alcotest.int "policy modules without .mli are flagged"
    (List.length policy_modules)
    (List.length
       (Lint.Runner.mli_findings ~config:Lint.Config.default policy_modules));
  (* with their .mli siblings present the set is clean *)
  check slist "with interfaces present, clean" []
    (rules_of
       (Lint.Runner.mli_findings ~config:Lint.Config.default
          (policy_modules
          @ List.map
              (fun f -> Filename.remove_extension f ^ ".mli")
              policy_modules)))

let test_finding_format () =
  let f =
    Lint.Finding.make ~file:"lib/x/y.ml" ~line:7 ~col:2 ~rule:"C001" "msg"
  in
  check Alcotest.string "file:line: [RULE] message"
    "lib/x/y.ml:7: [C001] msg"
    (Lint.Finding.to_string f)

(* ------------------------------------------------------------------ *)
(* Interprocedural analysis (v2): the Extract -> Callgraph -> Interproc
   pipeline driven through Runner.analyze on in-memory units.  Paths
   matter: lib/ interfaces get U001 treatment, unit module names come
   from the file name, and the boundary / engine-surface / critical-
   section config keys match against the derived qualified names. *)

let analyze ?ref_sources srcs =
  Lint.Runner.analyze ~config:Lint.Config.default ?ref_sources srcs

let only rule findings =
  List.filter (fun f -> String.equal f.Lint.Finding.rule rule) findings

let contains ~sub s =
  let n = String.length sub and len = String.length s in
  let rec go i =
    i + n <= len && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  go 0

let assert_one_msg name ~sub = function
  | [ f ] ->
      if not (contains ~sub f.Lint.Finding.msg) then
        Alcotest.failf "%s: message %S lacks %S" name f.Lint.Finding.msg sub
  | fs ->
      Alcotest.failf "%s: expected exactly one finding, got %d" name
        (List.length fs)

(* --- D003: engine-surface nondeterminism taint --- *)

let d003_units ~tainted ~allow =
  [
    ( "lib/core/rng_util.ml",
      "let pick n = (Random.int [@lint.allow \"D001\"]) n\n\
       let safe n = n + 1\n" );
    ("lib/core/rng_util.mli", "val pick : int -> int\nval safe : int -> int\n");
    ( "lib/core/tree.ml",
      if tainted then
        "let put k = Rng_util.pick k\nlet get k = Rng_util.safe k\n"
      else "let put k = Rng_util.safe k\nlet get k = Rng_util.safe k\n" );
    ( "lib/core/tree.mli",
      if allow then
        "val put : int -> int [@@lint.allow \"D003\"]\nval get : int -> int\n"
      else "val put : int -> int\nval get : int -> int\n" );
  ]

let test_d003_fires () =
  let fs, _ = analyze (d003_units ~tainted:true ~allow:false) in
  assert_one_msg "D003 names the tainted op" ~sub:"Tree.put" (only "D003" fs);
  assert_one_msg "witness reaches the source" ~sub:"Random.int"
    (only "D003" fs)

let test_d003_clean () =
  let fs, _ = analyze (d003_units ~tainted:false ~allow:false) in
  check Alcotest.int "untainted surface is clean" 0
    (List.length (only "D003" fs))

let test_d003_export_allow () =
  let fs, _ = analyze (d003_units ~tainted:true ~allow:true) in
  check Alcotest.int "allow on the .mli export silences D003" 0
    (List.length (only "D003" fs))

(* --- E001: exception escape across protocol boundaries --- *)

let repl body = [ ("lib/core/repl_server.ml", body) ]

let test_e001_fires () =
  let fs, _ = analyze (repl "let attach ep = List.assoc ep []\n") in
  assert_one_msg "stdlib raiser escapes the boundary" ~sub:"Not_found"
    (only "E001" fs)

let test_e001_allowed_exns () =
  let fs, _ =
    analyze
      (repl
         "let attach ep =\n\
         \  if ep then failwith \"wedged\" else invalid_arg \"ep\"\n")
  in
  check Alcotest.int "declared crossings do not fire" 0
    (List.length (only "E001" fs))

let test_e001_try_mask () =
  let fs, _ =
    analyze (repl "let attach ep = try List.assoc ep [] with Not_found -> 0\n")
  in
  check Alcotest.int "try/with masks the named exception" 0
    (List.length (only "E001" fs))

let test_e001_match_exception_scrutinee_only () =
  (* the sstable-reader bug shape: [match e with exception P] masks only
     the scrutinee; a raiser in the success branch still escapes *)
  let fs, _ =
    analyze
      (repl
         "let second ep = List.assoc ep []\n\
          let attach ep =\n\
         \  match List.assoc ep [] with\n\
         \  | exception Not_found -> 0\n\
         \  | v -> v + second ep\n")
  in
  assert_one_msg "success branch is not masked"
    ~sub:"Repl_server.attach -> Repl_server.second" (only "E001" fs)

let test_e001_rethrow_transparent () =
  let fs, _ =
    analyze
      (repl "let attach ep = try List.assoc ep [] with e -> ignore ep; raise e\n")
  in
  assert_one_msg "observe-and-rethrow does not absorb" ~sub:"Not_found"
    (only "E001" fs)

let test_e001_catch_all_absorbs () =
  let fs, _ =
    analyze (repl "let attach ep = try List.assoc ep [] with _ -> 0\n")
  in
  check Alcotest.int "catch-all masks everything (C002's beat, not E001's)" 0
    (List.length (only "E001" fs))

(* --- C003: transitive comparator purity --- *)

let c003_units ~pure ~allow =
  [
    ( "lib/util/cmpx.ml",
      "let hits = ref 0\n\
       let counting a b = incr hits; String.compare a b\n\
       let clean a b = String.compare a b\n" );
    ( "lib/core/sorty.ml",
      if pure then "let sort l = List.sort Cmpx.clean l\n"
      else if allow then
        "let sort l = List.sort (Cmpx.counting [@lint.allow \"C003\"]) l\n"
      else "let sort l = List.sort Cmpx.counting l\n" );
  ]

let test_c003_fires () =
  let fs, _ = analyze (c003_units ~pure:false ~allow:false) in
  assert_one_msg "counting comparator is impure" ~sub:"mutates escaping state"
    (only "C003" fs)

let test_c003_pure_clean () =
  let fs, _ = analyze (c003_units ~pure:true ~allow:false) in
  check Alcotest.int "a pure named comparator passes" 0
    (List.length (only "C003" fs))

let test_c003_site_allow () =
  let fs, _ = analyze (c003_units ~pure:false ~allow:true) in
  check Alcotest.int "allow at the use site silences C003" 0
    (List.length (only "C003" fs))

(* --- Y001: stall-effect layering --- *)

let y001_units ~inside ~allow =
  [
    ( "lib/pagestore/wal.ml",
      if not inside then
        "let append x = x\nlet maintain () = Scheduler.spring_quota ()\n"
      else if allow then
        "let pace () = Scheduler.spring_quota ()\n\
         let append x = pace (); x [@@lint.allow \"Y001\"]\n"
      else
        "let pace () = Scheduler.spring_quota ()\nlet append x = pace (); x\n"
    );
  ]

let test_y001_fires () =
  let fs, _ = analyze (y001_units ~inside:true ~allow:false) in
  assert_one_msg "pacing reached from inside WAL append"
    ~sub:"Scheduler.spring_quota" (only "Y001" fs);
  assert_one_msg "names the critical section" ~sub:"WAL-append"
    (only "Y001" fs)

let test_y001_outside_clean () =
  let fs, _ = analyze (y001_units ~inside:false ~allow:false) in
  check Alcotest.int "pacing outside the critical section is the design" 0
    (List.length (only "Y001" fs))

let test_y001_binding_allow () =
  let fs, _ = analyze (y001_units ~inside:true ~allow:true) in
  check Alcotest.int "allow on the binding silences Y001" 0
    (List.length (only "Y001" fs))

(* --- U001: dead exports --- *)

let u001_units =
  [
    ("lib/util/thing.ml", "let used x = x\nlet dead x = x\nlet kept x = x\n");
    ( "lib/util/thing.mli",
      "val used : int -> int\n\
       val dead : int -> int\n\n\
       [@@@lint.allow \"U001\"]\n\n\
       val kept : int -> int\n" );
    ("bin/lintprobe.ml", "let () = ignore (Thing.used 3)\n");
  ]

let test_u001_fires () =
  let fs, _ = analyze u001_units in
  assert_one_msg
    "only the unreferenced export past no floating allow is dead"
    ~sub:"Thing.dead" (only "U001" fs)

let test_u001_ref_sources_keep_alive () =
  let fs, _ =
    analyze u001_units
      ~ref_sources:[ ("test/probe.ml", "let () = ignore (Thing.dead 3)\n") ]
  in
  check Alcotest.int "a test/ reference keeps the export alive" 0
    (List.length (only "U001" fs))

(* --- SCC fixpoint, cross-module cycles, functor guards --- *)

let test_scc_cross_module_cycle () =
  let _, g =
    analyze
      [
        ( "lib/util/aa.ml",
          "let ping n =\n\
          \  if n = 0 then (Random.bits [@lint.allow \"D001\"]) ()\n\
          \  else Bb.pong (n - 1)\n" );
        ("lib/util/bb.ml", "let pong n = Aa.ping n\n");
      ]
  in
  let eff = Lint.Callgraph.node_effect g "lib/util/bb.ml#Bb.pong" in
  check Alcotest.bool "nondet flows around the cross-unit cycle" true
    eff.Lint.Effects.nondet;
  match Lint.Callgraph.nodes_by_qualified g "Aa.ping" with
  | [ n ] ->
      check Alcotest.string "key_of reconstructs the node key"
        "lib/util/aa.ml#Aa.ping"
        (Lint.Callgraph.key_of n.Lint.Callgraph.n_fn)
  | l -> Alcotest.failf "expected one Aa.ping node, got %d" (List.length l)

let test_scc_same_unit_raise_fixpoint () =
  let _, g =
    analyze
      [
        ( "lib/util/cyc.ml",
          "let rec f n = if n = 0 then g n else h n\n\
           and g n = f (n - 1)\n\
           and h n = if n > 5 then failwith \"deep\" else f 0\n" );
      ]
  in
  let eff = Lint.Callgraph.node_effect g "lib/util/cyc.ml#Cyc.f" in
  check slist "Failure circulates to every member of the SCC" [ "Failure" ]
    (Lint.Effects.raises_list eff)

let test_functor_no_false_edges () =
  let _, g =
    analyze
      [
        ( "lib/core/fctr.ml",
          "module F (X : sig\n\
          \  val f : unit -> int\n\
           end) =\n\
           struct\n\
          \  let g () = X.f ()\n\
           end\n\n\
           module Inst = F (struct\n\
          \  let f () = (Random.bits [@lint.allow \"D001\"]) ()\n\
           end)\n\n\
           let use () = Inst.g ()\n" );
      ]
  in
  let eff = Lint.Callgraph.node_effect g "lib/core/fctr.ml#Fctr.use" in
  check Alcotest.bool "no fabricated edge through a functor instantiation"
    false eff.Lint.Effects.nondet

(* --- small v2 surface --- *)

let test_module_name_of_path () =
  check Alcotest.string "tree.ml -> Tree" "Tree"
    (Lint.Extract.module_name_of_path "lib/core/tree.ml");
  check Alcotest.string "repl_server.mli -> Repl_server" "Repl_server"
    (Lint.Extract.module_name_of_path "lib/core/repl_server.mli")

let test_baseline_render () =
  let f =
    Lint.Finding.make ~file:"lib/x.ml" ~line:3 ~col:0 ~rule:"U001" "dead"
  in
  let s = Lint.Baseline.render [ f ] in
  check Alcotest.bool "header is commented" true
    (String.length s > 0 && s.[0] = '#');
  check Alcotest.bool "body carries the baseline key" true
    (contains ~sub:(Lint.Finding.baseline_key f) s)

(* --- order invariance: the determinism contract, as a property --- *)

let interproc_corpus =
  d003_units ~tainted:true ~allow:false
  @ repl
      "let second ep = List.assoc ep []\n\
       let attach ep =\n\
      \  match List.assoc ep [] with\n\
      \  | exception Not_found -> 0\n\
      \  | v -> v + second ep\n"
  @ c003_units ~pure:false ~allow:false
  @ y001_units ~inside:true ~allow:false
  @ u001_units
  @ [
      ( "lib/util/aa.ml",
        "let ping n =\n\
        \  if n = 0 then (Random.bits [@lint.allow \"D001\"]) ()\n\
        \  else Bb.pong (n - 1)\n" );
      ("lib/util/bb.ml", "let pong n = Aa.ping n\n");
      ( "lib/util/cyc.ml",
        "let rec f n = if n = 0 then g n else h n\n\
         and g n = f (n - 1)\n\
         and h n = if n > 5 then failwith \"deep\" else f 0\n" );
    ]

let expect_findings, expect_graph = analyze interproc_corpus

let expect_report =
  String.concat "\n" (List.map Lint.Finding.to_string expect_findings)

let expect_json = Lint.Callgraph.to_json expect_graph

let prop_order_invariant =
  QCheck.Test.make ~count:25
    ~name:"analysis is invariant under file-visitation order"
    (QCheck.make (QCheck.Gen.shuffle_l interproc_corpus))
    (fun perm ->
      let fs, g = analyze perm in
      String.equal expect_report
        (String.concat "\n" (List.map Lint.Finding.to_string fs))
      && String.equal expect_json (Lint.Callgraph.to_json g))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "D001 bad" `Quick test_d001_bad;
          Alcotest.test_case "D001 ok" `Quick test_d001_ok;
          Alcotest.test_case "D002 bad" `Quick test_d002_bad;
          Alcotest.test_case "D002 ok" `Quick test_d002_ok;
          Alcotest.test_case "C001 bad" `Quick test_c001_bad;
          Alcotest.test_case "C001 ok" `Quick test_c001_ok;
          Alcotest.test_case "C002 bad" `Quick test_c002_bad;
          Alcotest.test_case "C002 ok" `Quick test_c002_ok;
          Alcotest.test_case "A001 bad" `Quick test_a001_bad;
          Alcotest.test_case "A001 allowed dir" `Quick test_a001_allowed_dir;
          Alcotest.test_case "A001 ok" `Quick test_a001_ok;
          Alcotest.test_case "A002 bad" `Quick test_a002_bad;
          Alcotest.test_case "A002 unmarked file" `Quick
            test_a002_non_replication_file;
          Alcotest.test_case "A002 exempt dir" `Quick test_a002_exempt_dir;
          Alcotest.test_case "A002 ok" `Quick test_a002_ok;
          Alcotest.test_case "P000 parse error" `Quick test_p000;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "attributes" `Quick test_suppress_attr;
          Alcotest.test_case "scoping" `Quick test_suppress_scope;
          Alcotest.test_case "wrong rule" `Quick test_suppress_wrong_rule;
          Alcotest.test_case "malformed payload" `Quick test_malformed_allow;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "filter" `Quick test_baseline_filter;
          Alcotest.test_case "multiset" `Quick test_baseline_is_multiset;
          Alcotest.test_case "roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "missing file" `Quick test_baseline_missing_file;
        ] );
      ( "runner",
        [
          Alcotest.test_case "S001 tree" `Quick test_s001_tree;
          Alcotest.test_case "policy layer Platter-walled" `Quick
            test_policy_platter_walled;
          Alcotest.test_case "policy modules need .mli" `Quick
            test_policy_mli_required;
          Alcotest.test_case "finding format" `Quick test_finding_format;
        ] );
      ( "interproc",
        [
          Alcotest.test_case "D003 fires" `Quick test_d003_fires;
          Alcotest.test_case "D003 clean" `Quick test_d003_clean;
          Alcotest.test_case "D003 export allow" `Quick test_d003_export_allow;
          Alcotest.test_case "E001 fires" `Quick test_e001_fires;
          Alcotest.test_case "E001 allowed exns" `Quick test_e001_allowed_exns;
          Alcotest.test_case "E001 try mask" `Quick test_e001_try_mask;
          Alcotest.test_case "E001 match-exception scrutinee only" `Quick
            test_e001_match_exception_scrutinee_only;
          Alcotest.test_case "E001 rethrow transparent" `Quick
            test_e001_rethrow_transparent;
          Alcotest.test_case "E001 catch-all absorbs" `Quick
            test_e001_catch_all_absorbs;
          Alcotest.test_case "C003 fires" `Quick test_c003_fires;
          Alcotest.test_case "C003 pure clean" `Quick test_c003_pure_clean;
          Alcotest.test_case "C003 site allow" `Quick test_c003_site_allow;
          Alcotest.test_case "Y001 fires" `Quick test_y001_fires;
          Alcotest.test_case "Y001 outside clean" `Quick
            test_y001_outside_clean;
          Alcotest.test_case "Y001 binding allow" `Quick
            test_y001_binding_allow;
          Alcotest.test_case "U001 fires" `Quick test_u001_fires;
          Alcotest.test_case "U001 ref sources keep alive" `Quick
            test_u001_ref_sources_keep_alive;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "cross-module SCC" `Quick
            test_scc_cross_module_cycle;
          Alcotest.test_case "same-unit raise fixpoint" `Quick
            test_scc_same_unit_raise_fixpoint;
          Alcotest.test_case "functor guard" `Quick
            test_functor_no_false_edges;
          Alcotest.test_case "module name of path" `Quick
            test_module_name_of_path;
          Alcotest.test_case "baseline render" `Quick test_baseline_render;
          QCheck_alcotest.to_alcotest prop_order_invariant;
        ] );
    ]
