(* Tests for blsm-lint (lib/lint): every rule has at least one failing
   and one passing fixture in test/lint_fixtures/, and the two
   suppression mechanisms — scoped [@lint.allow] attributes and the
   checked-in baseline — are exercised end to end. *)

let check = Alcotest.check

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Lint a fixture file under a chosen logical path: the path's directory
   is what rule A001 judges, so the same fixture can be tested from
   inside and outside an allowed directory. *)
let lint ~path fixture =
  Lint.Rules.lint_source ~config:Lint.Config.default ~path
    (read_file (Filename.concat "lint_fixtures" fixture))

let rules_of findings = List.map (fun f -> f.Lint.Finding.rule) findings

let slist = Alcotest.(list string)

(* ------------------------------------------------------------------ *)
(* Per-rule fixtures *)

let test_d001_bad () =
  check slist "five nondeterminism sources"
    [ "D001"; "D001"; "D001"; "D001"; "D001" ]
    (rules_of (lint ~path:"bench/d001_bad.ml" "d001_bad.ml"))

let test_d001_ok () =
  check slist "seeded PRNGs pass" []
    (rules_of (lint ~path:"bench/d001_ok.ml" "d001_ok.ml"))

let test_d002_bad () =
  check slist "iter and fold both flagged" [ "D002"; "D002" ]
    (rules_of (lint ~path:"lib/util/d002_bad.ml" "d002_bad.ml"))

let test_d002_ok () =
  check slist "sorted-keys probe passes" []
    (rules_of (lint ~path:"lib/util/d002_ok.ml" "d002_ok.ml"))

let test_c001_bad () =
  check slist "bare compare, lambda compare, poly operator"
    [ "C001"; "C001"; "C001" ]
    (rules_of (lint ~path:"lib/core/c001_bad.ml" "c001_bad.ml"))

let test_c001_ok () =
  check slist "monomorphic comparators pass" []
    (rules_of (lint ~path:"lib/core/c001_ok.ml" "c001_ok.ml"))

let test_c002_bad () =
  check slist "try-catch-all and match-exception-catch-all"
    [ "C002"; "C002" ]
    (rules_of (lint ~path:"lib/core/c002_bad.ml" "c002_bad.ml"))

let test_c002_ok () =
  check slist "explicit exceptions and bind+reraise pass" []
    (rules_of (lint ~path:"lib/core/c002_ok.ml" "c002_ok.ml"))

let test_a001_bad () =
  check slist "platter internals from lib/memtable: expr, qualified, type"
    [ "A001"; "A001"; "A001" ]
    (rules_of (lint ~path:"lib/memtable/a001_bad.ml" "a001_bad.ml"))

let test_a001_allowed_dir () =
  check slist "same references are legal inside lib/pagestore" []
    (rules_of (lint ~path:"lib/pagestore/a001_bad.ml" "a001_bad.ml"))

let test_a001_ok () =
  check slist "the public Simdisk.Disk API is open to everyone" []
    (rules_of (lint ~path:"lib/core/a001_ok.ml" "a001_ok.ml"))

let test_a002_bad () =
  check slist "service module and WAL both flagged from a replication file"
    [ "A002"; "A002" ]
    (rules_of (lint ~path:"lib/core/replication.ml" "a002_bad.ml"))

let test_a002_non_replication_file () =
  check slist "same references are fine when the basename is not marked" []
    (rules_of (lint ~path:"lib/core/server_glue.ml" "a002_bad.ml"))

let test_a002_exempt_dir () =
  check slist "the transport layer itself is exempt" []
    (rules_of (lint ~path:"lib/simnet/replication_xport.ml" "a002_bad.ml"))

let test_a002_ok () =
  check slist "simnet + Repl_msg is the legal shape" []
    (rules_of (lint ~path:"lib/core/replication.ml" "a002_ok.ml"))

let test_p000 () =
  check slist "garbage does not parse" [ "P000" ]
    (rules_of (lint ~path:"lib/core/p000_bad.ml" "p000_bad.ml"))

(* ------------------------------------------------------------------ *)
(* Suppression: [@lint.allow] attributes *)

let test_suppress_attr () =
  check slist
    "expression, binding and floating allows silence their subtrees" []
    (rules_of (lint ~path:"bench/suppress_attr.ml" "suppress_attr.ml"))

let test_suppress_scope () =
  let fs = lint ~path:"bench/suppress_scope.ml" "suppress_scope.ml" in
  check slist "allow does not leak past its expression" [ "D001" ]
    (rules_of fs);
  check Alcotest.int "the unsuppressed site is the second binding" 4
    (List.hd fs).Lint.Finding.line

let test_suppress_wrong_rule () =
  (* an allow for a different rule must not silence anything *)
  let fs =
    Lint.Rules.lint_source ~config:Lint.Config.default
      ~path:"bench/inline.ml"
      "let now () = (Unix.gettimeofday [@lint.allow \"C001\"]) ()\n"
  in
  check slist "C001 allow does not cover D001" [ "D001" ] (rules_of fs)

let test_malformed_allow () =
  let fs =
    Lint.Rules.lint_source ~config:Lint.Config.default
      ~path:"bench/inline.ml"
      "let now () = (Unix.gettimeofday [@lint.allow 42]) ()\n"
  in
  check slist "malformed payload: L000 plus the undimmed D001"
    [ "D001"; "L000" ]
    (List.sort String.compare (rules_of fs))

(* ------------------------------------------------------------------ *)
(* Baseline mechanism *)

let test_baseline_filter () =
  let fs = lint ~path:"lib/core/c002_bad.ml" "c002_bad.ml" in
  check Alcotest.int "two findings to play with" 2 (List.length fs);
  let keys = List.map Lint.Finding.baseline_key fs in
  check Alcotest.int "full baseline absorbs everything" 0
    (List.length (Lint.Baseline.filter ~baseline:keys fs));
  check Alcotest.int "partial baseline leaves the rest" 1
    (List.length
       (Lint.Baseline.filter ~baseline:[ List.hd keys ] fs))

let test_baseline_is_multiset () =
  let f =
    Lint.Finding.make ~file:"x.ml" ~line:3 ~col:0 ~rule:"C002" "boom"
  in
  let dup =
    Lint.Baseline.filter
      ~baseline:[ Lint.Finding.baseline_key f ]
      [ f; { f with Lint.Finding.line = 9 } ]
  in
  check Alcotest.int
    "one baseline line absorbs exactly one identical finding" 1
    (List.length dup)

let test_baseline_roundtrip () =
  let fs = lint ~path:"lib/core/c002_bad.ml" "c002_bad.ml" in
  let path = Filename.temp_file "blsm_lint" ".baseline" in
  Lint.Baseline.save path fs;
  let keys = Lint.Baseline.load path in
  Sys.remove path;
  check Alcotest.int "comments stripped, one key per finding"
    (List.length fs) (List.length keys);
  check Alcotest.int "reloaded baseline absorbs the findings" 0
    (List.length (Lint.Baseline.filter ~baseline:keys fs))

let test_baseline_missing_file () =
  check Alcotest.int "missing baseline file is empty, not an error" 0
    (List.length (Lint.Baseline.load "lint_fixtures/no_such_baseline"))

(* ------------------------------------------------------------------ *)
(* S001 and the runner *)

let test_s001_tree () =
  let fs =
    Lint.Runner.run ~config:Lint.Config.default
      ~root:"lint_fixtures/s001_tree" [ "lib" ]
  in
  check slist "exactly the interface-less module is flagged" [ "S001" ]
    (rules_of fs);
  check Alcotest.string "and it is the right module" "lib/nodoc/widget.ml"
    (List.hd fs).Lint.Finding.file

(* The compaction-policy layer (ISSUE 9) must stay behind the same
   walls as the rest of lib/core: Platter access is pagestore/simdisk
   business (A001), and every policy module ships an interface (S001).
   These pin the *config* — the whole-tree `@lint` alias enforces the
   actual sources — so carving an exemption for the policy modules
   fails a test, not just a review. *)

let policy_modules =
  [ "lib/core/compaction_policy.ml"; "lib/core/policy_tree.ml" ]

let test_policy_platter_walled () =
  List.iter
    (fun path ->
      check slist
        (path ^ ": Platter references are flagged")
        [ "A001"; "A001"; "A001" ]
        (rules_of (lint ~path "a001_bad.ml")))
    policy_modules

let test_policy_mli_required () =
  (* without interfaces: one S001 per policy module *)
  check Alcotest.int "policy modules without .mli are flagged"
    (List.length policy_modules)
    (List.length
       (Lint.Runner.mli_findings ~config:Lint.Config.default policy_modules));
  (* with their .mli siblings present the set is clean *)
  check slist "with interfaces present, clean" []
    (rules_of
       (Lint.Runner.mli_findings ~config:Lint.Config.default
          (policy_modules
          @ List.map
              (fun f -> Filename.remove_extension f ^ ".mli")
              policy_modules)))

let test_finding_format () =
  let f =
    Lint.Finding.make ~file:"lib/x/y.ml" ~line:7 ~col:2 ~rule:"C001" "msg"
  in
  check Alcotest.string "file:line: [RULE] message"
    "lib/x/y.ml:7: [C001] msg"
    (Lint.Finding.to_string f)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "D001 bad" `Quick test_d001_bad;
          Alcotest.test_case "D001 ok" `Quick test_d001_ok;
          Alcotest.test_case "D002 bad" `Quick test_d002_bad;
          Alcotest.test_case "D002 ok" `Quick test_d002_ok;
          Alcotest.test_case "C001 bad" `Quick test_c001_bad;
          Alcotest.test_case "C001 ok" `Quick test_c001_ok;
          Alcotest.test_case "C002 bad" `Quick test_c002_bad;
          Alcotest.test_case "C002 ok" `Quick test_c002_ok;
          Alcotest.test_case "A001 bad" `Quick test_a001_bad;
          Alcotest.test_case "A001 allowed dir" `Quick test_a001_allowed_dir;
          Alcotest.test_case "A001 ok" `Quick test_a001_ok;
          Alcotest.test_case "A002 bad" `Quick test_a002_bad;
          Alcotest.test_case "A002 unmarked file" `Quick
            test_a002_non_replication_file;
          Alcotest.test_case "A002 exempt dir" `Quick test_a002_exempt_dir;
          Alcotest.test_case "A002 ok" `Quick test_a002_ok;
          Alcotest.test_case "P000 parse error" `Quick test_p000;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "attributes" `Quick test_suppress_attr;
          Alcotest.test_case "scoping" `Quick test_suppress_scope;
          Alcotest.test_case "wrong rule" `Quick test_suppress_wrong_rule;
          Alcotest.test_case "malformed payload" `Quick test_malformed_allow;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "filter" `Quick test_baseline_filter;
          Alcotest.test_case "multiset" `Quick test_baseline_is_multiset;
          Alcotest.test_case "roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "missing file" `Quick test_baseline_missing_file;
        ] );
      ( "runner",
        [
          Alcotest.test_case "S001 tree" `Quick test_s001_tree;
          Alcotest.test_case "policy layer Platter-walled" `Quick
            test_policy_platter_walled;
          Alcotest.test_case "policy modules need .mli" `Quick
            test_policy_mli_required;
          Alcotest.test_case "finding format" `Quick test_finding_format;
        ] );
    ]
