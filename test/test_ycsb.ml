(* YCSB generator and runner tests: distribution shape, determinism,
   keyspace growth, runner bookkeeping. *)

let check = Alcotest.check

let test_uniform_covers_space () =
  let g = Ycsb.Generator.uniform ~seed:1 in
  let seen = Array.make 50 0 in
  for _ = 1 to 50_000 do
    let i = Ycsb.Generator.next g ~record_count:50 in
    seen.(i) <- seen.(i) + 1
  done;
  Array.iteri
    (fun i c -> if c = 0 then Alcotest.failf "bucket %d never drawn" i)
    seen;
  let mx = Array.fold_left max 0 seen and mn = Array.fold_left min max_int seen in
  if float_of_int mx /. float_of_int mn > 1.6 then
    Alcotest.failf "uniform too skewed: %d vs %d" mn mx

let test_zipfian_skew () =
  (* unscrambled zipfian: rank 0 must dominate *)
  let g = Ycsb.Generator.zipfian ~scrambled:false ~seed:2 ~n:10_000 () in
  let counts = Hashtbl.create 64 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Ycsb.Generator.next g ~record_count:10_000 in
    Hashtbl.replace counts i (1 + Option.value (Hashtbl.find_opt counts i) ~default:0)
  done;
  let c0 = Option.value (Hashtbl.find_opt counts 0) ~default:0 in
  let frac = float_of_int c0 /. float_of_int n in
  (* YCSB zipfian(0.99) over 10k items: top item ~ 10% of draws *)
  if frac < 0.04 || frac > 0.25 then
    Alcotest.failf "rank-0 fraction %.3f outside [0.04, 0.25]" frac;
  (* top-10 ranks should cover a large chunk *)
  let top10 = ref 0 in
  for i = 0 to 9 do
    top10 := !top10 + Option.value (Hashtbl.find_opt counts i) ~default:0
  done;
  if float_of_int !top10 /. float_of_int n < 0.2 then
    Alcotest.fail "zipfian not skewed enough"

let test_zipfian_scrambled_spreads_hotkeys () =
  let g = Ycsb.Generator.zipfian ~scrambled:true ~seed:3 ~n:10_000 () in
  let counts = Hashtbl.create 64 in
  for _ = 1 to 50_000 do
    let i = Ycsb.Generator.next g ~record_count:10_000 in
    Hashtbl.replace counts i (1 + Option.value (Hashtbl.find_opt counts i) ~default:0)
  done;
  (* the hottest key should NOT be rank 0 or 1 in id space (it is hashed) *)
  let hottest, _ =
    Hashtbl.fold (fun k c (bk, bc) -> if c > bc then (k, c) else (bk, bc)) counts (0, 0)
  in
  if hottest <= 1 then Alcotest.fail "scramble did not move the hot key"

let test_zipfian_keyspace_growth () =
  let g = Ycsb.Generator.zipfian ~seed:4 ~n:100 () in
  (* growing record_count must keep draws in range *)
  for rc = 100 to 2000 do
    let i = Ycsb.Generator.next g ~record_count:rc in
    if i < 0 || i >= rc then Alcotest.failf "draw %d out of range %d" i rc
  done

let test_latest_prefers_recent () =
  let g = Ycsb.Generator.latest ~seed:5 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let i = Ycsb.Generator.next g ~record_count:1000 in
    if i >= 900 then incr hits
  done;
  if float_of_int !hits /. float_of_int n < 0.5 then
    Alcotest.fail "latest distribution not recent-biased"

let test_generator_determinism () =
  let a = Ycsb.Generator.zipfian ~seed:7 ~n:1000 () in
  let b = Ycsb.Generator.zipfian ~seed:7 ~n:1000 () in
  for _ = 1 to 1000 do
    check Alcotest.int "same draws"
      (Ycsb.Generator.next a ~record_count:1000)
      (Ycsb.Generator.next b ~record_count:1000)
  done

(* Runner against a trivial in-memory engine *)

let dummy_engine () =
  let disk = Simdisk.Disk.create Simdisk.Profile.ssd_raid0 in
  let tbl = Hashtbl.create 64 in
  {
    Kv.Kv_intf.name = "dummy";
    disk;
    get =
      (fun k ->
        Simdisk.Disk.seek_read disk ~bytes:4096;
        Hashtbl.find_opt tbl k);
    put =
      (fun k v ->
        Simdisk.Disk.seq_write disk ~bytes:(String.length v);
        Hashtbl.replace tbl k v);
    delete = (fun k -> Hashtbl.remove tbl k);
    apply_delta =
      (fun k d ->
        let v = Option.value (Hashtbl.find_opt tbl k) ~default:"" in
        Hashtbl.replace tbl k (v ^ d));
    read_modify_write =
      (fun k f ->
        Simdisk.Disk.seek_read disk ~bytes:4096;
        Hashtbl.replace tbl k (f (Hashtbl.find_opt tbl k)));
    insert_if_absent =
      (fun k v ->
        if Hashtbl.mem tbl k then false
        else begin
          Hashtbl.replace tbl k v;
          true
        end);
    scan = (fun _ _ -> []);
    maintenance = (fun () -> ());
  }

let test_runner_load () =
  let e = dummy_engine () in
  let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:100 in
  let r = Ycsb.Runner.load e ks ~n:500 () in
  check Alcotest.int "ops" 500 r.Ycsb.Runner.ops;
  check Alcotest.int "keyspace grew" 500 ks.Ycsb.Runner.records;
  check Alcotest.int "latencies recorded" 500
    (Repro_util.Histogram.count r.Ycsb.Runner.latency);
  if r.Ycsb.Runner.ops_per_sec <= 0.0 then Alcotest.fail "throughput missing"

let test_runner_mix () =
  let e = dummy_engine () in
  let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:100 in
  ignore (Ycsb.Runner.load e ks ~n:200 ());
  let r =
    Ycsb.Runner.run e ks ~label:"mix"
      ~mix:[ (Ycsb.Runner.Read, 0.5); (Ycsb.Runner.Blind_update, 0.5) ]
      ~ops:1000 ~dist:(Ycsb.Generator.uniform ~seed:1) ()
  in
  check Alcotest.int "ops" 1000 r.Ycsb.Runner.ops;
  let reads = Repro_util.Histogram.count r.Ycsb.Runner.read_latency in
  let writes = Repro_util.Histogram.count r.Ycsb.Runner.write_latency in
  check Alcotest.int "split covers all" 1000 (reads + writes);
  if reads < 350 || reads > 650 then Alcotest.failf "mix off: %d reads" reads;
  (* reads on this dummy cost a seek; writes are bandwidth-only *)
  if
    Repro_util.Histogram.mean r.Ycsb.Runner.read_latency
    <= Repro_util.Histogram.mean r.Ycsb.Runner.write_latency
  then Alcotest.fail "read latency should exceed write latency here"

let test_runner_inserts_extend_keyspace () =
  let e = dummy_engine () in
  let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:50 in
  ignore (Ycsb.Runner.load e ks ~n:100 ());
  ignore
    (Ycsb.Runner.run e ks ~label:"inserts"
       ~mix:[ (Ycsb.Runner.Insert, 1.0) ]
       ~ops:50 ~dist:(Ycsb.Generator.uniform ~seed:2) ());
  check Alcotest.int "grew" 150 ks.Ycsb.Runner.records

let test_runner_deletes () =
  let e = dummy_engine () in
  let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:50 in
  ignore (Ycsb.Runner.load e ks ~n:100 ());
  let r =
    Ycsb.Runner.run e ks ~label:"deletes"
      ~mix:[ (Ycsb.Runner.Delete, 1.0) ]
      ~ops:50 ~dist:(Ycsb.Generator.uniform ~seed:3) ()
  in
  (* deletes classify as writes and don't extend the keyspace *)
  check Alcotest.int "ops" 50 r.Ycsb.Runner.ops;
  check Alcotest.int "writes" 50
    (Repro_util.Histogram.count r.Ycsb.Runner.write_latency);
  check Alcotest.int "keyspace unchanged" 100 ks.Ycsb.Runner.records

(* -------------------------------------------------------------------- *)
(* Open-loop generator (PR 8) *)

let test_arrivals_deterministic_and_monotone () =
  let check_schedule sched =
    let a = Ycsb.Open_loop.arrivals sched ~seed:9 ~jitter:0.2 ~n:500 in
    let b = Ycsb.Open_loop.arrivals sched ~seed:9 ~jitter:0.2 ~n:500 in
    check (Alcotest.array (Alcotest.float 0.0)) "same seed, same schedule" a b;
    let c = Ycsb.Open_loop.arrivals sched ~seed:10 ~jitter:0.2 ~n:500 in
    if a = c then Alcotest.fail "different seed should jitter differently";
    Array.iteri
      (fun i t ->
        if i > 0 && t <= a.(i - 1) then
          Alcotest.failf "arrivals not strictly increasing at %d" i)
      a
  in
  check_schedule (Ycsb.Open_loop.Fixed_rate { ops_per_sec = 10_000.0 });
  check_schedule
    (Ycsb.Open_loop.Bursty
       {
         base_ops_per_sec = 5_000.0;
         burst_ops_per_sec = 50_000.0;
         period_us = 100_000.0;
         burst_fraction = 0.2;
       })

let test_arrivals_fixed_rate_spacing () =
  (* without jitter, a fixed-rate schedule is an exact arithmetic ramp *)
  let a =
    Ycsb.Open_loop.arrivals
      (Ycsb.Open_loop.Fixed_rate { ops_per_sec = 1_000.0 })
      ~seed:1 ~jitter:0.0 ~n:100
  in
  check (Alcotest.float 0.001) "first" 1_000.0 a.(0);
  check (Alcotest.float 0.001) "last" 100_000.0 a.(99)

let test_arrivals_bursty_denser_in_burst () =
  let a =
    Ycsb.Open_loop.arrivals
      (Ycsb.Open_loop.Bursty
         {
           base_ops_per_sec = 1_000.0;
           burst_ops_per_sec = 20_000.0;
           period_us = 100_000.0;
           burst_fraction = 0.25;
         })
      ~seed:1 ~jitter:0.0 ~n:2_000
  in
  (* count arrivals inside vs outside the burst quarter of each period *)
  let in_burst = ref 0 and out_burst = ref 0 in
  Array.iter
    (fun t ->
      let phase = Float.rem t 100_000.0 in
      if phase < 25_000.0 then incr in_burst else incr out_burst)
    a;
  (* burst quarter carries 20k/s vs 1k/s elsewhere: expect ~87% inside *)
  if float_of_int !in_burst /. float_of_int (Array.length a) < 0.6 then
    Alcotest.failf "burst not denser: %d in, %d out" !in_burst !out_burst

let open_loop_run ?(rate = 50_000.0) ?(engine = dummy_engine ()) ?(ops = 400)
    () =
  let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:100 in
  ignore (Ycsb.Runner.load engine ks ~n:200 ());
  Ycsb.Open_loop.run engine ks ~label:"ol"
    ~mix:[ (Ycsb.Runner.Blind_update, 0.9); (Ycsb.Runner.Read, 0.1) ]
    ~ops
    ~dist:(Ycsb.Generator.uniform ~seed:4)
    ~schedule:(Ycsb.Open_loop.Fixed_rate { ops_per_sec = rate })
    ~window_us:10_000 ~seed:5 ()

let test_open_loop_completes_all () =
  let r = open_loop_run () in
  check Alcotest.int "offered" 400 r.Ycsb.Open_loop.ol_offered;
  check Alcotest.int "completed" 400 r.Ycsb.Open_loop.ol_completed;
  check Alcotest.int "nothing shed" 0 r.Ycsb.Open_loop.ol_shed;
  check Alcotest.int "all latencies recorded" 400
    (Repro_util.Histogram.count r.Ycsb.Open_loop.ol_latency);
  check Alcotest.int "windows saw every op" 400
    (Obs.Windows.total_ops r.Ycsb.Open_loop.ol_windows)

let test_open_loop_arrival_time_exceeds_service () =
  (* the whole point: under queueing, arrival-time latency must dominate
     service-only latency — the closed-loop number would hide the wait *)
  let slow = dummy_engine () in
  (* overdrive a modest engine: rate far above capacity *)
  let r = open_loop_run ~engine:slow ~rate:10_000_000.0 () in
  let arr = Repro_util.Histogram.mean r.Ycsb.Open_loop.ol_latency in
  let svc = Repro_util.Histogram.mean r.Ycsb.Open_loop.ol_service in
  if arr <= svc then
    Alcotest.failf "arrival-time mean %.1f not above service mean %.1f" arr svc;
  check Alcotest.bool "queue built up" true (r.Ycsb.Open_loop.ol_max_queue > 1)

let test_open_loop_queue_bound_sheds () =
  let e = dummy_engine () in
  let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:100 in
  ignore (Ycsb.Runner.load e ks ~n:100 ());
  let r =
    Ycsb.Open_loop.run e ks ~label:"shed"
      ~mix:[ (Ycsb.Runner.Blind_update, 1.0) ]
      ~ops:400
      ~dist:(Ycsb.Generator.uniform ~seed:6)
      ~schedule:(Ycsb.Open_loop.Fixed_rate { ops_per_sec = 10_000_000.0 })
      ~queue_bound:10 ~seed:7 ()
  in
  check Alcotest.bool "overflow shed" true (r.Ycsb.Open_loop.ol_shed > 0);
  check Alcotest.int "bound respected" 10 r.Ycsb.Open_loop.ol_max_queue;
  check Alcotest.int "completed + shed = offered"
    r.Ycsb.Open_loop.ol_offered
    (r.Ycsb.Open_loop.ol_completed + r.Ycsb.Open_loop.ol_shed)

let test_open_loop_deterministic () =
  let render r =
    Obs.Windows.rows_csv r.Ycsb.Open_loop.ol_windows
    ^ Fmt.str "%a" Ycsb.Open_loop.pp_result r
  in
  let a = render (open_loop_run ()) and b = render (open_loop_run ()) in
  check Alcotest.bool "same-seed byte-identical" true (String.equal a b)

let () =
  Alcotest.run "ycsb"
    [
      ( "generator",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_covers_space;
          Alcotest.test_case "zipfian skew" `Quick test_zipfian_skew;
          Alcotest.test_case "zipfian scrambled" `Quick test_zipfian_scrambled_spreads_hotkeys;
          Alcotest.test_case "keyspace growth" `Quick test_zipfian_keyspace_growth;
          Alcotest.test_case "latest" `Quick test_latest_prefers_recent;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
        ] );
      ( "runner",
        [
          Alcotest.test_case "load" `Quick test_runner_load;
          Alcotest.test_case "mix" `Quick test_runner_mix;
          Alcotest.test_case "inserts extend" `Quick test_runner_inserts_extend_keyspace;
          Alcotest.test_case "deletes" `Quick test_runner_deletes;
        ] );
      ( "open-loop",
        [
          Alcotest.test_case "arrivals deterministic+monotone" `Quick
            test_arrivals_deterministic_and_monotone;
          Alcotest.test_case "fixed-rate spacing" `Quick
            test_arrivals_fixed_rate_spacing;
          Alcotest.test_case "bursty density" `Quick
            test_arrivals_bursty_denser_in_burst;
          Alcotest.test_case "completes all" `Quick test_open_loop_completes_all;
          Alcotest.test_case "arrival time exceeds service" `Quick
            test_open_loop_arrival_time_exceeds_service;
          Alcotest.test_case "queue bound sheds" `Quick
            test_open_loop_queue_bound_sheds;
          Alcotest.test_case "deterministic" `Quick test_open_loop_deterministic;
        ] );
    ]
