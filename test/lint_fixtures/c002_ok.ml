(* C002 passing fixture: explicit exception lists are fine, and so is
   binding the exception (it can be logged and re-raised). *)
let guard g = try g () with Not_found | Failure _ -> 0

let log_and_reraise g =
  try g ()
  with e ->
    print_string "failed";
    raise e
