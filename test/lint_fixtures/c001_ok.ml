(* C001 passing fixture: monomorphic comparators; polymorphic min/max
   outside a comparator position are not C001's business (D001/D002
   cover the dangerous cases). *)
let plain xs = List.sort String.compare xs
let by_age xs = List.sort (fun a b -> Int.compare b.age a.age) xs
let clamp a b = min a b
