(* D002 passing fixture: iterate a sorted key list, probe the table. *)
let dump keys tbl =
  List.iter
    (fun k -> print_string (k ^ Hashtbl.find tbl k))
    (List.sort String.compare keys)
