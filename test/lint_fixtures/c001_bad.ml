(* C001 failing fixture: polymorphic comparison in comparator
   positions — bare compare, compare inside a lambda, and a polymorphic
   operator inside a comparator body. *)
let plain xs = List.sort compare xs
let by_age xs = List.sort (fun a b -> compare b.age a.age) xs
let by_op xs = Array.sort (fun a b -> if a.k < b.k then -1 else 1) xs
