(* Suppression fixture: the same violations as the *_bad fixtures, each
   silenced by a scoped [@lint.allow] — expression attribute, binding
   attribute, and a floating file-level attribute. *)
let now () = (Unix.gettimeofday [@lint.allow "D001"]) ()

let[@lint.allow "C002"] guard g = try g () with _ -> 0

[@@@lint.allow "D002"]

let dump tbl = Hashtbl.iter (fun _ _ -> ()) tbl
