(* A001 failing fixture: platter internals referenced from outside the
   pagestore/simdisk layers (linted under a lib/memtable/ logical
   path) — expression, qualified expression, and type positions. *)
let peek id = Platter.read id
let direct = Pagestore.Platter.write
let cache : Platter.t option = None
