(* D001 passing fixture: explicitly seeded PRNGs are fine. *)
let prng = Repro_util.Prng.create ~seed:42
let draw st = Random.State.int st 10
let state = Random.State.make [| 7 |]
