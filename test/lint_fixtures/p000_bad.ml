(* P000 fixture: not OCaml beyond this comment. *)
let let let = = =
