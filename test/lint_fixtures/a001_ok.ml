(* A001 passing fixture: everyone may talk to the public Simdisk.Disk
   API; the matrix only fences the platter internals. *)
let read d page = Simdisk.Disk.read d page
let seeks d = Simdisk.Disk.seeks d
