(* S001 failing fixture: a lib/ module with no interface. *)
let x = 1
