(* Signature-only module: exempt from S001 by the _intf suffix. *)
module type S = sig
  val z : int
end
