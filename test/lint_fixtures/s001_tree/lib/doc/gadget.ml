(* S001 passing fixture: interface alongside. *)
let y = 2
