(* The interface S001 wants. *)
val y : int
