(* The interface S001 wants.  The export is fixture-only, so U001 is
   allowed away to keep this tree a pure S001 case. *)
val y : int [@@lint.allow "U001"]
