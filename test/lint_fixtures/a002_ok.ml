(* A002 fixture: the legal shape — peer state flows only as Repl_msg
   frames over the Simnet endpoint. *)

let ask ep body = Simnet.call ep ~dst:"primary" ~timeout_us:1_000 body

let frame e = Repl_msg.encode_req ~epoch:e Repl_msg.Probe
