(* D002 failing fixture: raw Hashtbl iteration in both spellings. *)
let dump tbl = Hashtbl.iter (fun k v -> print_string (k ^ v)) tbl
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
