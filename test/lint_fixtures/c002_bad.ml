(* C002 failing fixture: catch-alls in both the try and the
   match-exception spelling. *)
let guard g = try g () with _ -> 0
let guard2 g = match g () with x -> x | exception _ -> 0
