(* A002 fixture: replication logic reaching for peer state directly
   instead of going through the simnet endpoint.  Both the primary-side
   service module and the WAL are off-limits from a *replication* file:
   a direct call bypasses every injected drop/delay/partition. *)

let serve tree = Repl_server.create tree

let peek wal = Pagestore.Wal.next_lsn wal
