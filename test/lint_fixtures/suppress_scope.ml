(* Scoping fixture: an expression-level allow must not leak to later
   bindings — exactly one of these two clock reads is a finding. *)
let a () = (Unix.gettimeofday [@lint.allow "D001"]) ()
let b () = Unix.gettimeofday ()
