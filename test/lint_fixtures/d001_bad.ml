(* D001 failing fixture: five nondeterminism sources.  Linted under a
   bench/ logical path so the Unix references do not also trip A001. *)
let seed () = Random.self_init ()
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let hash k = Hashtbl.hash k
let draw () = Random.int 10
