(* Unit and property tests for lib/util: PRNG, varint, CRC32C, histogram,
   timeseries, keygen. *)

open Repro_util

let check = Alcotest.check

(* -------------------------------------------------------------------- *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.of_int 7 and b = Prng.of_int 7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.bits a) (Prng.bits b)
  done

let test_prng_bounds () =
  let p = Prng.of_int 1 in
  for _ = 1 to 10_000 do
    let v = Prng.int p 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_prng_float_range () =
  let p = Prng.of_int 2 in
  for _ = 1 to 10_000 do
    let f = Prng.float p in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_prng_split_independent () =
  let p = Prng.of_int 3 in
  let q = Prng.split p in
  let a = Prng.bits p and b = Prng.bits q in
  if a = b then Alcotest.fail "split streams identical"

let test_prng_int_rough_uniformity () =
  let p = Prng.of_int 4 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int p 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      if frac < 0.08 || frac > 0.12 then
        Alcotest.failf "bucket fraction %f far from 0.1" frac)
    counts

let test_shuffle_permutation () =
  let p = Prng.of_int 5 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 100 Fun.id) sorted

(* -------------------------------------------------------------------- *)
(* Varint *)

let varint_roundtrip n =
  let buf = Buffer.create 10 in
  Varint.write buf n;
  let s = Buffer.contents buf in
  let v, pos = Varint.read s 0 in
  v = n && pos = String.length s && Varint.size n = String.length s

let test_varint_cases () =
  List.iter
    (fun n ->
      if not (varint_roundtrip n) then Alcotest.failf "roundtrip failed: %d" n)
    [ 0; 1; 127; 128; 255; 300; 16384; 1 lsl 30; max_int ]

let test_varint_negative_rejected () =
  let buf = Buffer.create 4 in
  Alcotest.check_raises "negative" (Invalid_argument "Varint.write: negative")
    (fun () -> Varint.write buf (-1))

let test_varint_truncated () =
  (match Varint.read "\x80" 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure on truncated varint")

let prop_varint =
  QCheck.Test.make ~name:"varint roundtrip" ~count:1000
    QCheck.(map abs small_int)
    varint_roundtrip

(* -------------------------------------------------------------------- *)
(* Crc32c *)

let test_crc_known_vector () =
  (* CRC32C("123456789") = 0xE3069283 *)
  check Alcotest.int "check vector" 0xE3069283 (Crc32c.string "123456789")

let test_crc_empty () = check Alcotest.int "empty" 0 (Crc32c.string "")

let test_crc_sensitivity () =
  if Crc32c.string "hello world" = Crc32c.string "hello worle" then
    Alcotest.fail "CRC collision on 1-byte change"

let test_crc_bytes_slice () =
  let s = "abcdefgh" in
  check Alcotest.int "slice"
    (Crc32c.string "cdef")
    (Crc32c.bytes (Bytes.of_string s) 2 4)

(* The table-slicing kernel folds 16 bytes per iteration with an 8-byte
   step and a bytewise tail; every length from 0 to a few strides
   exercises each alignment of the three regimes. Check them all against
   an independent bit-at-a-time CRC32C. *)
let crc_reference s =
  let poly = 0x82F63B78 in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch ->
      crc := !crc lxor Char.code ch;
      for _ = 0 to 7 do
        if !crc land 1 = 1 then crc := (!crc lsr 1) lxor poly
        else crc := !crc lsr 1
      done)
    s;
  !crc lxor 0xFFFFFFFF

let test_crc_matches_bitwise_reference () =
  let prng = Prng.of_int 99 in
  for len = 0 to 300 do
    let s = String.init len (fun _ -> Char.chr (Prng.int prng 256)) in
    check Alcotest.int
      (Printf.sprintf "len %d" len)
      (crc_reference s) (Crc32c.string s)
  done

let test_crc_incremental_compose () =
  (* update must be splittable at any point, including mid-stride. *)
  let prng = Prng.of_int 7 in
  let s = String.init 257 (fun _ -> Char.chr (Prng.int prng 256)) in
  let whole = Crc32c.string s in
  List.iter
    (fun cut ->
      let c = Crc32c.update 0xFFFFFFFF s 0 cut in
      let c = Crc32c.update c s cut (String.length s - cut) in
      check Alcotest.int (Printf.sprintf "cut %d" cut) whole (c lxor 0xFFFFFFFF))
    [ 1; 7; 8; 9; 15; 16; 17; 31; 32; 100; 256 ]

let test_crc_standard_vectors () =
  (* RFC 3720 §B.4 test patterns. *)
  check Alcotest.int "32 zeros" 0x8A9136AA
    (Crc32c.string (String.make 32 '\x00'));
  check Alcotest.int "32 ones" 0x62A8AB43
    (Crc32c.string (String.make 32 '\xff'));
  check Alcotest.int "ascending" 0x46DD794E
    (Crc32c.string (String.init 32 Char.chr))

(* -------------------------------------------------------------------- *)
(* Histogram *)

let test_histogram_empty () =
  let h = Histogram.create () in
  check Alcotest.int "count" 0 (Histogram.count h);
  check Alcotest.int "p99" 0 (Histogram.percentile h 99.0)

let test_histogram_exact_small () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  check Alcotest.int "p50" 5 (Histogram.percentile h 50.0);
  check Alcotest.int "max" 10 (Histogram.max_value h);
  check Alcotest.int "min" 1 (Histogram.min_value h);
  check (Alcotest.float 0.01) "mean" 5.5 (Histogram.mean h)

let test_histogram_percentile_bounds () =
  let h = Histogram.create () in
  for i = 1 to 10_000 do
    Histogram.add h i
  done;
  let p99 = Histogram.percentile h 99.0 in
  (* log-bucketed: within ~3.2% of 9900 *)
  if p99 < 9500 || p99 > 10_000 then Alcotest.failf "p99=%d out of range" p99

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 10;
  Histogram.add b 1000;
  Histogram.merge ~into:a b;
  check Alcotest.int "count" 2 (Histogram.count a);
  check Alcotest.int "max" 1000 (Histogram.max_value a)

let prop_histogram_max =
  QCheck.Test.make ~name:"histogram max/min/count" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (map abs small_int))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) values;
      Histogram.count h = List.length values
      && Histogram.max_value h = List.fold_left max 0 values
      && Histogram.min_value h = List.fold_left min max_int values)

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~name:"percentiles monotone" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (map abs small_int))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) values;
      let p25 = Histogram.percentile h 25.0 in
      let p50 = Histogram.percentile h 50.0 in
      let p99 = Histogram.percentile h 99.0 in
      p25 <= p50 && p50 <= p99)

(* Edge cases (ISSUE 3 satellite): empty, p=100 boundary, a single
   sample, and values sitting exactly on bucket edges. *)

let test_histogram_empty_queries () =
  let h = Histogram.create () in
  check Alcotest.int "max of empty" 0 (Histogram.max_value h);
  check Alcotest.int "min of empty" 0 (Histogram.min_value h);
  check (Alcotest.float 0.0) "mean of empty" 0.0 (Histogram.mean h);
  check Alcotest.int "p50 of empty" 0 (Histogram.percentile h 50.0);
  check Alcotest.int "p100 of empty" 0 (Histogram.percentile h 100.0)

let test_histogram_p100_boundary () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 3; 17; 4096; 123_456 ];
  (* p=100 must return exactly the recorded maximum, never a bucket edge
     above it *)
  check Alcotest.int "p100 = max" (Histogram.max_value h)
    (Histogram.percentile h 100.0);
  check Alcotest.int "p100 value" 123_456 (Histogram.percentile h 100.0)

let test_histogram_single_sample () =
  let h = Histogram.create () in
  Histogram.add h 777;
  check Alcotest.int "count" 1 (Histogram.count h);
  check Alcotest.int "max" 777 (Histogram.max_value h);
  check Alcotest.int "min" 777 (Histogram.min_value h);
  check (Alcotest.float 0.0) "mean" 777.0 (Histogram.mean h);
  (* every percentile of a single sample lands in its bucket; the edge
     is clamped to the recorded max *)
  List.iter
    (fun p -> check Alcotest.int "percentile" 777 (Histogram.percentile h p))
    [ 0.001; 1.0; 50.0; 99.9; 100.0 ]

let test_histogram_bucket_edges () =
  (* values on exact power-of-two bucket edges must round-trip through
     index_of/value_of exactly: the percentile of a pile of identical
     edge values is that value *)
  List.iter
    (fun v ->
      let h = Histogram.create () in
      for _ = 1 to 10 do
        Histogram.add h v
      done;
      check Alcotest.int
        (Printf.sprintf "edge %d" v)
        v (Histogram.percentile h 50.0))
    [ 0; 1; 31; 32; 33; 63; 64; 1024; 1 lsl 20 ]

let test_histogram_negative_clamped () =
  let h = Histogram.create () in
  Histogram.add h (-5);
  check Alcotest.int "clamped to 0" 0 (Histogram.max_value h);
  check Alcotest.int "counted" 1 (Histogram.count h)

(* Merge edge cases (PR 8 satellite): windows with no samples flow
   through cross-shard rollup without inventing data. *)

let test_histogram_merge_empty_src () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 42;
  Histogram.merge ~into:a b;
  check Alcotest.int "count unchanged" 1 (Histogram.count a);
  check Alcotest.int "max unchanged" 42 (Histogram.max_value a);
  check (Alcotest.float 0.0) "mean unchanged" 42.0 (Histogram.mean a)

let test_histogram_merge_into_empty () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add b) [ 5; 10; 15 ];
  Histogram.merge ~into:a b;
  check Alcotest.int "count" 3 (Histogram.count a);
  check Alcotest.int "min" 5 (Histogram.min_value a);
  check Alcotest.int "max" 15 (Histogram.max_value a);
  check Alcotest.int "p50" 10 (Histogram.percentile a 50.0);
  (* src must be untouched *)
  check Alcotest.int "src count" 3 (Histogram.count b)

let test_histogram_merge_both_empty () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.merge ~into:a b;
  check Alcotest.int "count" 0 (Histogram.count a);
  check Alcotest.int "p99" 0 (Histogram.percentile a 99.0)

let test_histogram_merge_single_samples () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 1;
  Histogram.add b 1_000_000;
  Histogram.merge ~into:a b;
  check Alcotest.int "count" 2 (Histogram.count a);
  check Alcotest.int "min" 1 (Histogram.min_value a);
  check Alcotest.int "max" 1_000_000 (Histogram.max_value a);
  check Alcotest.int "p100 exact" 1_000_000 (Histogram.percentile a 100.0)

(* A merged quantile cannot escape the envelope of its shards' quantiles
   by more than one bucket: for any p,
   min_shard q(p) <= q_merged(p) <= max_shard q(p) up to the histogram's
   1/32 (sub_bucket_bits = 5) bucket resolution. The slack is real, not
   defensive: a 1-sample shard reports its exact value (rank = total
   clamps to max), while the merged histogram may answer with the lower
   edge of that value's bucket — shards [65] and [67] merge to a p50 of
   64. This bound is what makes cross-shard p99 rollups honest. *)
let prop_histogram_merge_brackets =
  QCheck.Test.make ~name:"merged quantiles bracket shard quantiles"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 10)
           (list_of_size Gen.(1 -- 40) (map abs small_int)))
        (float_range 0.1 100.0))
    (fun (shards, p) ->
      QCheck.assume (shards <> []);
      let hs =
        List.map
          (fun values ->
            let h = Histogram.create () in
            List.iter (Histogram.add h) values;
            h)
          shards
      in
      let merged = Histogram.create () in
      List.iter (fun h -> Histogram.merge ~into:merged h) hs;
      let qs = List.map (fun h -> Histogram.percentile h p) hs in
      let q = float_of_int (Histogram.percentile merged p) in
      let lo = float_of_int (List.fold_left min max_int qs) in
      let hi = float_of_int (List.fold_left max 0 qs) in
      let res = 1.0 /. 32.0 in
      q >= (lo *. (1.0 -. res)) -. 1.0 && q <= (hi *. (1.0 +. res)) +. 1.0)

(* percentile is monotone in p itself, over arbitrary (p1, p2) pairs —
   stronger than the fixed 25/50/99 triple above *)
let prop_histogram_monotone_in_p =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:300
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 60) (map abs small_int))
        (float_bound_exclusive 100.0) (float_bound_exclusive 100.0))
    (fun (values, a, b) ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) values;
      let lo = Float.min a b +. 0.001 and hi = Float.max a b +. 0.001 in
      Histogram.percentile h lo <= Histogram.percentile h hi)

(* -------------------------------------------------------------------- *)
(* Timeseries *)

let test_timeseries_buckets () =
  let ts = Timeseries.create ~width_us:1_000_000 in
  Timeseries.record ts ~time_us:100 ~latency_us:5;
  Timeseries.record ts ~time_us:200 ~latency_us:10;
  Timeseries.record ts ~time_us:2_500_000 ~latency_us:20;
  let rows = Timeseries.rows ts in
  check Alcotest.int "3 buckets incl. empty middle" 3 (List.length rows);
  let first = List.hd rows in
  check (Alcotest.float 0.01) "ops/sec" 2.0 first.Timeseries.ops_per_sec;
  let middle = List.nth rows 1 in
  check (Alcotest.float 0.01) "stalled bucket" 0.0 middle.Timeseries.ops_per_sec

let test_timeseries_empty () =
  let ts = Timeseries.create ~width_us:1000 in
  check Alcotest.int "no rows" 0 (List.length (Timeseries.rows ts))

let test_timeseries_single_record () =
  let ts = Timeseries.create ~width_us:500_000 in
  Timeseries.record ts ~time_us:1_250_000 ~latency_us:4_000;
  match Timeseries.rows ts with
  | [ r ] ->
      check (Alcotest.float 0.001) "bucket start" 1.0 r.Timeseries.t_sec;
      check (Alcotest.float 0.01) "ops/sec" 2.0 r.Timeseries.ops_per_sec;
      check (Alcotest.float 0.01) "mean ms" 4.0 r.Timeseries.mean_latency_ms;
      check (Alcotest.float 0.01) "max ms" 4.0 r.Timeseries.max_latency_ms
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

let test_timeseries_latency_aggregation () =
  let ts = Timeseries.create ~width_us:1_000_000 in
  (* 100 ops in one bucket: latencies 1..100 ms *)
  for i = 1 to 100 do
    Timeseries.record ts ~time_us:(i * 1000) ~latency_us:(i * 1000)
  done;
  match Timeseries.rows ts with
  | [ r ] ->
      check (Alcotest.float 0.01) "ops/sec" 100.0 r.Timeseries.ops_per_sec;
      check (Alcotest.float 0.6) "mean ms" 50.5 r.Timeseries.mean_latency_ms;
      check (Alcotest.float 0.01) "max ms" 100.0 r.Timeseries.max_latency_ms;
      if r.Timeseries.p99_latency_ms < 95.0 || r.Timeseries.p99_latency_ms > 100.0
      then Alcotest.failf "p99 %.1f out of range" r.Timeseries.p99_latency_ms
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

let test_timeseries_window_boundary () =
  (* an op stamped exactly on a bucket boundary belongs to the bucket it
     opens, not the one it closes *)
  let ts = Timeseries.create ~width_us:1_000_000 in
  Timeseries.record ts ~time_us:999_999 ~latency_us:1;
  Timeseries.record ts ~time_us:1_000_000 ~latency_us:9;
  match Timeseries.rows ts with
  | [ r0; r1 ] ->
      check (Alcotest.float 0.001) "bucket 0" 0.0 r0.Timeseries.t_sec;
      check (Alcotest.float 0.01) "one op in bucket 0" 1.0
        r0.Timeseries.ops_per_sec;
      check (Alcotest.float 0.001) "bucket 1" 1.0 r1.Timeseries.t_sec;
      check (Alcotest.float 0.01) "boundary op in bucket 1" 1.0
        r1.Timeseries.ops_per_sec;
      check (Alcotest.float 0.001) "boundary op's latency too" 0.009
        r1.Timeseries.max_latency_ms
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let test_timeseries_leading_stall_not_padded () =
  (* buckets before the first recorded op are not emitted: rows start at
     the first active bucket, empties only appear *between* active ones *)
  let ts = Timeseries.create ~width_us:1_000_000 in
  Timeseries.record ts ~time_us:5_500_000 ~latency_us:10;
  let rows = Timeseries.rows ts in
  check Alcotest.int "one row" 1 (List.length rows);
  check (Alcotest.float 0.001) "starts at 5s" 5.0
    (List.hd rows).Timeseries.t_sec

(* -------------------------------------------------------------------- *)
(* Keygen *)

let test_keygen_deterministic () =
  check Alcotest.string "stable" (Keygen.key_of_id 42) (Keygen.key_of_id 42)

let test_keygen_distinct () =
  let seen = Hashtbl.create 1000 in
  for i = 0 to 9999 do
    let k = Keygen.key_of_id i in
    if Hashtbl.mem seen k then Alcotest.failf "duplicate key for id %d" i;
    Hashtbl.add seen k ()
  done

let test_keygen_unordered () =
  (* hashed keys must not be in id order (that's the point) *)
  let ordered = ref true in
  for i = 0 to 99 do
    if String.compare (Keygen.key_of_id i) (Keygen.key_of_id (i + 1)) > 0 then
      ordered := false
  done;
  if !ordered then Alcotest.fail "hashed keys unexpectedly sorted"

let test_keygen_ordered_variant () =
  for i = 0 to 99 do
    if
      String.compare (Keygen.ordered_key_of_id i) (Keygen.ordered_key_of_id (i + 1))
      >= 0
    then Alcotest.fail "ordered keys must sort by id"
  done

let test_keygen_value_length () =
  let p = Prng.of_int 9 in
  check Alcotest.int "value len" 1000 (String.length (Keygen.value p 1000))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "uniformity" `Quick test_prng_int_rough_uniformity;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
        ] );
      ( "varint",
        [
          Alcotest.test_case "cases" `Quick test_varint_cases;
          Alcotest.test_case "negative" `Quick test_varint_negative_rejected;
          Alcotest.test_case "truncated" `Quick test_varint_truncated;
          QCheck_alcotest.to_alcotest prop_varint;
        ] );
      ( "crc32c",
        [
          Alcotest.test_case "vector" `Quick test_crc_known_vector;
          Alcotest.test_case "empty" `Quick test_crc_empty;
          Alcotest.test_case "sensitivity" `Quick test_crc_sensitivity;
          Alcotest.test_case "slice" `Quick test_crc_bytes_slice;
          Alcotest.test_case "bitwise reference" `Quick
            test_crc_matches_bitwise_reference;
          Alcotest.test_case "incremental compose" `Quick
            test_crc_incremental_compose;
          Alcotest.test_case "standard vectors" `Quick test_crc_standard_vectors;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "exact small" `Quick test_histogram_exact_small;
          Alcotest.test_case "p99 bounds" `Quick test_histogram_percentile_bounds;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "empty queries" `Quick
            test_histogram_empty_queries;
          Alcotest.test_case "p100 boundary" `Quick test_histogram_p100_boundary;
          Alcotest.test_case "single sample" `Quick test_histogram_single_sample;
          Alcotest.test_case "bucket edges" `Quick test_histogram_bucket_edges;
          Alcotest.test_case "negative clamped" `Quick
            test_histogram_negative_clamped;
          Alcotest.test_case "merge empty src" `Quick
            test_histogram_merge_empty_src;
          Alcotest.test_case "merge into empty" `Quick
            test_histogram_merge_into_empty;
          Alcotest.test_case "merge both empty" `Quick
            test_histogram_merge_both_empty;
          Alcotest.test_case "merge single samples" `Quick
            test_histogram_merge_single_samples;
          QCheck_alcotest.to_alcotest prop_histogram_merge_brackets;
          QCheck_alcotest.to_alcotest prop_histogram_max;
          QCheck_alcotest.to_alcotest prop_histogram_percentile_monotone;
          QCheck_alcotest.to_alcotest prop_histogram_monotone_in_p;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "buckets" `Quick test_timeseries_buckets;
          Alcotest.test_case "empty" `Quick test_timeseries_empty;
          Alcotest.test_case "single record" `Quick
            test_timeseries_single_record;
          Alcotest.test_case "latency aggregation" `Quick
            test_timeseries_latency_aggregation;
          Alcotest.test_case "window boundary" `Quick
            test_timeseries_window_boundary;
          Alcotest.test_case "no leading padding" `Quick
            test_timeseries_leading_stall_not_padded;
        ] );
      ( "keygen",
        [
          Alcotest.test_case "deterministic" `Quick test_keygen_deterministic;
          Alcotest.test_case "distinct" `Quick test_keygen_distinct;
          Alcotest.test_case "unordered" `Quick test_keygen_unordered;
          Alcotest.test_case "ordered variant" `Quick test_keygen_ordered_variant;
          Alcotest.test_case "value length" `Quick test_keygen_value_length;
        ] );
    ]
