(* Log-shipping replication over the simulated network: supervised
   catch-up with retry/backoff, exactly-once under duplication and loss,
   truncation -> snapshot resync, follower crash recovery racing a
   catch-up batch, epoch fencing across failover, bounded-staleness
   shedding, the primary write fence, reserved-key hygiene, and QCheck
   properties for the backoff schedule and end-to-end convergence. *)

let check = Alcotest.check

let mk_store () =
  Pagestore.Store.create
    ~config:
      { Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = 128;
        cfg_durability = Pagestore.Wal.Full }
    Simdisk.Profile.ssd_raid0

let repl =
  {
    Blsm.Config.default_repl with
    Blsm.Config.req_timeout_us = 5_000;
    backoff_base_us = 500;
    backoff_cap_us = 4_000;
    max_attempts = 5;
    staleness_lease_us = 50_000;
  }

let config =
  {
    Blsm.Config.default with
    Blsm.Config.c0_bytes = 32 * 1024;
    size_ratio = Blsm.Config.Fixed 3.0;
    extent_pages = 8;
    repl;
  }

(* A primary serving on "primary" and a follower replicating from it. *)
let mk_pair ?(seed = 1) () =
  let net = Simnet.create ~seed () in
  let p = Blsm.Tree.create ~config (mk_store ()) in
  let server = Blsm.Repl_server.create p in
  Blsm.Repl_server.attach server (Simnet.endpoint net "primary");
  let f =
    Blsm.Replication.follower ~config ~net ~name:"follower" ~peer:"primary"
      (mk_store ())
  in
  (net, p, server, f)

(* user-visible rows: every reserved "\000…" bookkeeping key excluded *)
let user_rows tree = Blsm.Tree.scan tree "\001" 100_000

let assert_same_state primary follower_tree =
  let p = user_rows primary and f = user_rows follower_tree in
  if p <> f then
    Alcotest.failf "states diverge: primary %d rows, follower %d rows"
      (List.length p) (List.length f)

let sync_exn f =
  match Blsm.Replication.sync f with
  | `Unreachable -> Alcotest.fail "sync unreachable on a healthy link"
  | (`Applied _ | `Resynced) as r -> r

let test_basic_catch_up () =
  let _net, p, _server, f = mk_pair () in
  Blsm.Tree.put p "a" "1";
  Blsm.Tree.put p "b" "2";
  Blsm.Tree.apply_delta p "a" "+x";
  Blsm.Tree.delete p "b";
  (match sync_exn f with
  | `Applied 4 -> ()
  | `Applied n -> Alcotest.failf "expected 4 applied, got %d" n
  | `Resynced -> Alcotest.fail "unexpected snapshot bootstrap");
  let ft = Blsm.Replication.tree f in
  check (Alcotest.option Alcotest.string) "a with delta" (Some "1+x")
    (Blsm.Tree.get ft "a");
  check (Alcotest.option Alcotest.string) "b deleted" None
    (Blsm.Tree.get ft "b");
  assert_same_state p ft

let test_exactly_once_under_dup_and_drop () =
  let net, p, _server, f = mk_pair ~seed:3 () in
  Blsm.Tree.put p "k" "base";
  ignore (sync_exn f);
  (* no new records: repeated sync applies nothing *)
  (match sync_exn f with
  | `Applied 0 -> ()
  | _ -> Alcotest.fail "re-sync applied something");
  (* duplicate the next request AND the next reply: the server serves
     the batch twice, the follower sees the reply twice — the LSN guard
     must keep application exactly-once *)
  Blsm.Tree.apply_delta p "k" "+1";
  Simnet.schedule_duplicate net ~src:"follower" ~dst:"primary" ~after:1;
  Simnet.schedule_duplicate net ~src:"primary" ~dst:"follower" ~after:1;
  (match sync_exn f with
  | `Applied 1 -> ()
  | _ -> Alcotest.fail "expected exactly one applied under duplication");
  check (Alcotest.option Alcotest.string) "delta applied exactly once"
    (Some "base+1")
    (Blsm.Tree.get (Blsm.Replication.tree f) "k");
  (* lose the next request: the supervisor must retry and still apply
     the record exactly once *)
  Blsm.Tree.apply_delta p "k" "+2";
  Simnet.schedule_drop net ~src:"follower" ~dst:"primary" ~after:1;
  (match sync_exn f with
  | `Applied 1 -> ()
  | _ -> Alcotest.fail "expected exactly one applied after a lost request");
  check (Alcotest.option Alcotest.string) "delta survived the retry"
    (Some "base+1+2")
    (Blsm.Tree.get (Blsm.Replication.tree f) "k");
  let c = Blsm.Replication.counters f in
  if c.Blsm.Replication.retries < 1 then
    Alcotest.fail "lost request did not produce a retry"

let test_lag_accounting () =
  let _net, p, _server, f = mk_pair () in
  for i = 0 to 9 do
    Blsm.Tree.put p (Printf.sprintf "k%d" i) "v"
  done;
  ignore (sync_exn f);
  check Alcotest.int "lag 0 after sync" 0 (Blsm.Replication.lag f);
  check Alcotest.int "applied 10" 10 (Blsm.Replication.applied_lsn f)

let test_truncation_forces_resync () =
  let _net, p, _server, f = mk_pair () in
  (* write enough that merges truncate the primary's WAL *)
  for i = 0 to 2999 do
    Blsm.Tree.put p (Repro_util.Keygen.key_of_id i) (String.make 100 'v')
  done;
  Blsm.Tree.flush p;
  (match sync_exn f with
  | `Resynced -> ()
  | `Applied _ -> Alcotest.fail "expected snapshot bootstrap after truncation");
  assert_same_state p (Blsm.Replication.tree f);
  (* incremental tailing works after the bootstrap *)
  Blsm.Tree.put p "zzz-after-sync" "yes";
  (match sync_exn f with
  | `Applied 1 -> ()
  | `Applied n -> Alcotest.failf "expected 1, got %d" n
  | `Resynced -> Alcotest.fail "snapshot after resync?");
  check (Alcotest.option Alcotest.string) "tailing live" (Some "yes")
    (Blsm.Tree.get (Blsm.Replication.tree f) "zzz-after-sync")

let test_follower_crash_recovery () =
  let _net, p, _server, f = mk_pair () in
  Blsm.Tree.put p "a" "1";
  Blsm.Tree.apply_delta p "a" "+x";
  ignore (sync_exn f);
  let f = Blsm.Replication.crash_and_recover f in
  (* position recovered with the data: no re-application *)
  (match sync_exn f with
  | `Applied 0 -> ()
  | `Applied n -> Alcotest.failf "re-applied %d after crash" n
  | `Resynced -> Alcotest.fail "snapshot after crash?");
  check (Alcotest.option Alcotest.string) "delta not doubled" (Some "1+x")
    (Blsm.Tree.get (Blsm.Replication.tree f) "a");
  Blsm.Tree.put p "b" "2";
  ignore (sync_exn f);
  check (Alcotest.option Alcotest.string) "caught up" (Some "2")
    (Blsm.Tree.get (Blsm.Replication.tree f) "b")

(* Satellite: crash_and_recover racing a mid-flight catch-up batch under
   injected message loss. The follower crashes between applying one
   record of a batch and the next; because each applied record carries
   the position update in the same follower WAL record, recovery resumes
   at the exact boundary — nothing lost, nothing double-applied. *)
let test_crash_races_catch_up () =
  let net = Simnet.create ~seed:9 () in
  let p = Blsm.Tree.create ~config (mk_store ()) in
  let server = Blsm.Repl_server.create p in
  Blsm.Repl_server.attach server (Simnet.endpoint net "primary");
  let fstore = mk_store () in
  let ffaults = Simdisk.Faults.create ~seed:11 () in
  Pagestore.Store.set_faults fstore ffaults;
  let f =
    ref
      (Blsm.Replication.follower ~config ~net ~name:"follower" ~peer:"primary"
         fstore)
  in
  Blsm.Tree.put p "k" "base";
  ignore (sync_exn !f);
  Blsm.Tree.apply_delta p "k" "+1";
  Blsm.Tree.apply_delta p "k" "+2";
  Blsm.Tree.put p "j" "x";
  (* lose the next reply (forcing a retried batch) and power-fail the
     follower on its 2nd WAL append — i.e. mid-way through applying the
     retried batch, after "+1" persisted but before "+2" *)
  Simnet.schedule_drop net ~src:"primary" ~dst:"follower" ~after:1;
  Simdisk.Faults.schedule_crash_at_wal_append ffaults ~after:2 ~torn:false;
  (match Blsm.Replication.sync !f with
  | exception Simdisk.Faults.Crash_point _ -> ()
  | _ -> Alcotest.fail "expected the follower to crash mid-batch");
  f := Blsm.Replication.crash_and_recover !f;
  (match sync_exn !f with
  | `Applied n when n >= 1 -> ()
  | _ -> Alcotest.fail "expected remaining records to apply after recovery");
  let ft = Blsm.Replication.tree !f in
  check (Alcotest.option Alcotest.string)
    "deltas exactly once across crash+retry" (Some "base+1+2")
    (Blsm.Tree.get ft "k");
  check (Alcotest.option Alcotest.string) "trailing record applied" (Some "x")
    (Blsm.Tree.get ft "j");
  assert_same_state p ft

(* Failover with epoch fencing: the promoted follower serves at a higher
   epoch; the deposed primary's first message carries the old epoch and
   must be rejected (fenced) — it then adopts the new epoch and
   bootstraps, converging without any double-apply. *)
let test_failover_fencing () =
  let net, p, server, f = mk_pair ~seed:5 () in
  Blsm.Tree.put p "user:1" "alice";
  ignore (sync_exn f);
  let deposed_epoch = Blsm.Repl_server.epoch server in
  let new_epoch = Blsm.Replication.epoch f + 1 in
  let new_primary = Blsm.Replication.promote f in
  Simnet.clear_handler (Simnet.endpoint net "primary");
  Blsm.Repl_server.set_tree server new_primary;
  Blsm.Repl_server.set_epoch server new_epoch;
  Blsm.Repl_server.attach server (Simnet.endpoint net "follower");
  let f2 =
    Blsm.Replication.demote ~config ~net ~name:"primary" ~peer:"follower"
      ~epoch:deposed_epoch p
  in
  Blsm.Tree.put new_primary "user:2" "bob";
  let fenced_before =
    (Blsm.Repl_server.counters server).Blsm.Repl_server.fenced_rejects
  in
  (match sync_exn f2 with
  | `Resynced -> ()
  | `Applied _ -> Alcotest.fail "deposed primary skipped the fenced bootstrap");
  let fenced_after =
    (Blsm.Repl_server.counters server).Blsm.Repl_server.fenced_rejects
  in
  if fenced_after <= fenced_before then
    Alcotest.fail "deposed-epoch message was not fenced";
  if (Blsm.Replication.counters f2).Blsm.Replication.fenced_seen < 1 then
    Alcotest.fail "follower never observed the fence";
  check Alcotest.int "epoch adopted" new_epoch (Blsm.Replication.epoch f2);
  let ft = Blsm.Replication.tree f2 in
  check (Alcotest.option Alcotest.string) "replicated data" (Some "alice")
    (Blsm.Tree.get ft "user:1");
  check (Alcotest.option Alcotest.string) "new primary's write" (Some "bob")
    (Blsm.Tree.get ft "user:2");
  assert_same_state new_primary ft

(* Partition -> Unreachable -> Too_stale shed -> heal -> converge. *)
let test_partition_staleness_heal () =
  let net, p, _server, f = mk_pair ~seed:7 () in
  Blsm.Tree.put p "k" "v0";
  ignore (sync_exn f);
  (match Blsm.Replication.read f "k" with
  | `Ok (Some "v0") -> ()
  | _ -> Alcotest.fail "fresh follower must serve the read");
  Simnet.partition net "primary" "follower";
  Blsm.Tree.put p "k" "v1";
  (match Blsm.Replication.sync f with
  | `Unreachable -> ()
  | _ -> Alcotest.fail "sync across a partition must be Unreachable");
  (* let the staleness lease expire on the simulated clock *)
  Simnet.sleep net (repl.Blsm.Config.staleness_lease_us + 1_000);
  if not (Blsm.Replication.is_stale f) then
    Alcotest.fail "follower still fresh after the lease expired";
  (match Blsm.Replication.read f "k" with
  | `Too_stale -> ()
  | `Ok _ -> Alcotest.fail "stale follower served a read");
  if (Blsm.Replication.counters f).Blsm.Replication.stale_sheds < 1 then
    Alcotest.fail "shed not counted";
  Simnet.heal net "primary" "follower";
  (match sync_exn f with
  | `Applied 1 -> ()
  | _ -> Alcotest.fail "expected catch-up after heal");
  (match Blsm.Replication.read f "k" with
  | `Ok (Some "v1") -> ()
  | _ -> Alcotest.fail "healed follower must serve the new value")

(* Satellite: the primary write fence — resync's "primary must be
   quiescent" precondition is enforced, not documented. *)
let test_write_fence () =
  let _net, p, _server, f = mk_pair () in
  Blsm.Tree.put p "a" "1";
  Blsm.Tree.set_write_fence p true;
  (match Blsm.Tree.put p "b" "2" with
  | exception Blsm.Tree.Write_fenced -> ()
  | () -> Alcotest.fail "write under the fence must raise");
  (match Blsm.Tree.write_batch p [ ("c", Kv.Entry.Base "3") ] with
  | exception Blsm.Tree.Write_fenced -> ()
  | () -> Alcotest.fail "batch under the fence must raise");
  check (Alcotest.option Alcotest.string) "reads pass the fence" (Some "1")
    (Blsm.Tree.get p "a");
  Blsm.Tree.set_write_fence p false;
  Blsm.Tree.put p "b" "2";
  (* the snapshot path raises and lowers the fence around the cursor
     copy: after a resync the primary must accept writes again *)
  ignore (sync_exn f);
  Blsm.Tree.put p "d" "4";
  check (Alcotest.option Alcotest.string) "fence lowered after snapshot"
    (Some "4") (Blsm.Tree.get p "d")

(* Satellite: the reserved "\000"-prefixed bookkeeping keys exist in the
   follower's tree but never leak out of any user-facing read surface. *)
let test_reserved_keys_never_leak () =
  let _net, p, _server, f = mk_pair () in
  Blsm.Tree.put p "aaa" "1";
  Blsm.Tree.put p "zzz" "2";
  ignore (sync_exn f);
  let ft = Blsm.Replication.tree f in
  (* the bookkeeping records are really there… *)
  (match Blsm.Tree.get ft Blsm.Replication.position_key with
  | Some _ -> ()
  | None -> Alcotest.fail "position record missing from the follower tree");
  (match Blsm.Tree.get ft Blsm.Replication.epoch_key with
  | Some _ -> ()
  | None -> Alcotest.fail "epoch record missing from the follower tree");
  (* …and none of the scan/cursor surfaces expose them *)
  let assert_clean what rows =
    List.iter
      (fun (k, _) ->
        if String.length k > 0 && k.[0] = '\000' then
          Alcotest.failf "%s leaked reserved key" what)
      rows
  in
  assert_clean "user scan" (user_rows ft);
  (match Blsm.Replication.user_scan f "" 100 with
  | `Ok rows ->
      assert_clean "user_scan from \"\"" rows;
      check Alcotest.int "user_scan sees exactly the user rows" 2
        (List.length rows)
  | `Too_stale -> Alcotest.fail "fresh follower shed a scan");
  let cur = Blsm.Tree.cursor ~from:"\001" ft in
  let rec collect acc =
    match Blsm.Tree.cursor_next cur with
    | None -> List.rev acc
    | Some kv -> collect (kv :: acc)
  in
  assert_clean "cursor from \"\\001\"" (collect [])

let prop_backoff_schedule =
  QCheck.Test.make
    ~name:"backoff: deterministic per seed, monotone to cap, jitter in band"
    ~count:200
    QCheck.(triple small_int (int_range 1 16) (int_range 0 100))
    (fun (seed, attempts, jp) ->
      let jitter = float_of_int jp /. 100.0 in
      let base_us = 1_000 and cap_us = 32_000 in
      let sched () =
        Blsm.Replication.backoff_schedule ~base_us ~cap_us ~jitter ~seed
          ~attempts
      in
      let s1 = sched () and s2 = sched () in
      (* deterministic: same seed, same schedule *)
      s1 = s2
      && List.length s1 = attempts
      && (* nominal delays double monotonically up to the cap *)
      fst
        (List.fold_left
           (fun (ok, prev) (nominal, actual) ->
             ( ok && nominal >= prev && nominal <= cap_us
               && (nominal >= cap_us || prev = 0 || nominal = prev * 2)
               && (* jittered delay stays within the configured band *)
               actual >= nominal
               && float_of_int actual
                  <= (float_of_int nominal *. (1.0 +. jitter)) +. 1.0,
               nominal ))
           (true, 0) s1))

let prop_replication_converges =
  QCheck.Test.make
    ~name:"follower converges to primary under random ops and link faults"
    ~count:15
    QCheck.(pair small_int (int_range 1 10))
    (fun (seed, batch) ->
      let net, p, _server, f = mk_pair ~seed:(seed + 13) () in
      let f = ref f in
      let prng = Repro_util.Prng.of_int (seed + 7) in
      for i = 0 to 399 do
        let key = Printf.sprintf "k%03d" (Repro_util.Prng.int prng 120) in
        (match Repro_util.Prng.int prng 5 with
        | 0 | 1 | 2 -> Blsm.Tree.put p key (Printf.sprintf "v%d" i)
        | 3 -> Blsm.Tree.delete p key
        | _ -> Blsm.Tree.apply_delta p key "+d");
        if i mod 23 = 11 then begin
          (* sprinkle link faults on both directions *)
          let after = 1 + Repro_util.Prng.int prng 3 in
          match Repro_util.Prng.int prng 4 with
          | 0 ->
              Simnet.schedule_drop net ~src:"follower" ~dst:"primary" ~after
          | 1 ->
              Simnet.schedule_drop net ~src:"primary" ~dst:"follower" ~after
          | 2 ->
              Simnet.schedule_duplicate net ~src:"primary" ~dst:"follower"
                ~after
          | _ ->
              Simnet.schedule_delay net ~src:"follower" ~dst:"primary" ~after
                ~extra_us:2_000
        end;
        if i mod batch = 0 then ignore (Blsm.Replication.sync !f)
      done;
      Simnet.clear_faults net;
      let rec settle n =
        if n = 0 then false
        else
          match Blsm.Replication.sync !f with
          | `Applied _ | `Resynced -> true
          | `Unreachable -> settle (n - 1)
      in
      settle 5
      && user_rows p = user_rows (Blsm.Replication.tree !f))

let () =
  Alcotest.run "replication"
    [
      ( "replication",
        [
          Alcotest.test_case "basic catch-up" `Quick test_basic_catch_up;
          Alcotest.test_case "exactly once under dup+drop" `Quick
            test_exactly_once_under_dup_and_drop;
          Alcotest.test_case "lag" `Quick test_lag_accounting;
          Alcotest.test_case "truncation -> resync" `Quick
            test_truncation_forces_resync;
          Alcotest.test_case "follower crash" `Quick
            test_follower_crash_recovery;
          Alcotest.test_case "crash races catch-up batch" `Quick
            test_crash_races_catch_up;
          Alcotest.test_case "failover + fencing" `Quick test_failover_fencing;
          Alcotest.test_case "partition -> stale -> heal" `Quick
            test_partition_staleness_heal;
          Alcotest.test_case "write fence" `Quick test_write_fence;
          Alcotest.test_case "reserved keys never leak" `Quick
            test_reserved_keys_never_leak;
          QCheck_alcotest.to_alcotest prop_backoff_schedule;
          QCheck_alcotest.to_alcotest prop_replication_converges;
        ] );
    ]
