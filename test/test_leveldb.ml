(* LevelDB-sim tests: level structure, compaction invariants, model-based
   random ops, read-cost (no Bloom filters => multi-seek reads), L0
   slowdown/stop behaviour. *)

let check = Alcotest.check
module L = Leveldb_sim.Leveldb
module SMap = Map.Make (String)

let mk_store ?(buffer_pages = 128) () =
  Pagestore.Store.create
    ~config:
      { Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = buffer_pages;
        cfg_durability = Pagestore.Wal.Full }
    Simdisk.Profile.ssd_raid0

let small_config =
  {
    L.default_config with
    L.memtable_bytes = 16 * 1024;
    file_bytes = 16 * 1024;
    base_level_bytes = 64 * 1024;
    level_ratio = 4.0;
    extent_pages = 8;
  }

let mk () = L.create ~config:small_config (mk_store ())

let value i = Printf.sprintf "v%06d-%s" i (String.make 60 'x')

let test_put_get () =
  let t = mk () in
  L.put t "a" "1";
  L.put t "b" "2";
  check (Alcotest.option Alcotest.string) "a" (Some "1") (L.get t "a");
  check (Alcotest.option Alcotest.string) "missing" None (L.get t "zzz")

let test_delete_and_overwrite () =
  let t = mk () in
  L.put t "k" "v1";
  L.put t "k" "v2";
  check (Alcotest.option Alcotest.string) "latest" (Some "v2") (L.get t "k");
  L.delete t "k";
  check (Alcotest.option Alcotest.string) "deleted" None (L.get t "k")

let load t n =
  for i = 0 to n - 1 do
    L.put t (Repro_util.Keygen.key_of_id i) (value i)
  done

let test_data_survives_compactions () =
  let t = mk () in
  load t 3000;
  L.maintenance t;
  let s = L.stats t in
  check Alcotest.bool "flushes happened" true (s.L.flushes > 0);
  check Alcotest.bool "compactions happened" true (s.L.compactions > 0);
  for i = 0 to 2999 do
    match L.get t (Repro_util.Keygen.key_of_id i) with
    | Some v when v = value i -> ()
    | _ -> Alcotest.failf "lost key %d" i
  done

let test_levels_disjoint_below_l0 () =
  let t = mk () in
  load t 3000;
  L.maintenance t;
  (* deeper levels must have pairwise-disjoint, sorted files *)
  List.iter
    (fun info ->
      let i = info.L.li_level in
      if i >= 1 && info.L.li_files > 1 then begin
        (* reconstruct ranges via scan of level metadata *)
        ()
      end)
    (L.levels t);
  (* spot-check overall ordering via a full scan *)
  let out = L.scan t "" 5000 in
  let keys = List.map fst out in
  check (Alcotest.list Alcotest.string) "scan sorted" (List.sort compare keys) keys;
  check Alcotest.int "scan complete" 3000 (List.length out)

let test_deletes_survive_compactions () =
  let t = mk () in
  load t 2000;
  for i = 0 to 1999 do
    if i mod 4 = 0 then L.delete t (Repro_util.Keygen.key_of_id i)
  done;
  L.maintenance t;
  for i = 0 to 1999 do
    let got = L.get t (Repro_util.Keygen.key_of_id i) in
    if i mod 4 = 0 then check (Alcotest.option Alcotest.string) "deleted" None got
    else if got = None then Alcotest.failf "lost %d" i
  done

let test_multi_level_reads_cost_multiple_seeks () =
  (* tiny buffer pool so reads are cold *)
  let t = L.create ~config:small_config (mk_store ~buffer_pages:4 ()) in
  load t 4000;
  L.maintenance t;
  (* estimate says reads touch >1 component: LevelDB has no bloom filters *)
  let est = L.read_cost_estimate t (Repro_util.Keygen.key_of_id 100) in
  if est < 2 then Alcotest.failf "expected multi-level read cost, got %d" est;
  let disk = L.disk t in
  let before = Simdisk.Disk.snapshot disk in
  let n = 200 in
  for i = 0 to n - 1 do
    ignore (L.get t (Repro_util.Keygen.key_of_id (i * 17)))
  done;
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  let per_read = float_of_int d.Simdisk.Disk.seeks /. float_of_int n in
  if per_read <= 1.05 then
    Alcotest.failf "LevelDB reads should cost >1 seek (got %.2f)" per_read

let test_l0_stop_stalls_writes () =
  (* insert fast with a tiny compaction budget: L0 must hit the stop
     threshold and stall *)
  let config =
    { small_config with
      L.l0_compaction_trigger = 2; l0_slowdown = 3; l0_stop = 4;
      compaction_credit_per_byte = 1.5 }
  in
  let t = L.create ~config (mk_store ()) in
  load t 4000;
  let s = L.stats t in
  check Alcotest.bool "slowdowns or stops occurred" true
    (s.L.slowdown_writes > 0 || s.L.stop_stalls > 0)

let test_scan_across_levels () =
  let t = mk () in
  for i = 0 to 999 do
    L.put t (Printf.sprintf "k%05d" i) (string_of_int i)
  done;
  (* overwrite some while they sit in different levels *)
  L.maintenance t;
  for i = 0 to 99 do
    L.put t (Printf.sprintf "k%05d" (i * 10)) "fresh"
  done;
  let out = L.scan t "k00100" 20 in
  check Alcotest.int "20 rows" 20 (List.length out);
  check Alcotest.string "fresh value wins" "fresh" (List.assoc "k00100" out)

let prop_model =
  QCheck.Test.make ~name:"leveldb vs Map model" ~count:30
    (QCheck.make
       QCheck.Gen.(
         list_size (50 -- 400)
           (oneof
              [
                map (fun k -> `Put (k mod 150)) small_nat;
                map (fun k -> `Del (k mod 150)) small_nat;
                map (fun k -> `Get (k mod 150)) small_nat;
                map (fun k -> `Scan (k mod 150)) small_nat;
              ])))
    (fun ops ->
      let t = mk () in
      let m = ref SMap.empty in
      let ok = ref true in
      List.iteri
        (fun step op ->
          let key k = Printf.sprintf "key%03d" k in
          match op with
          | `Put k ->
              let v = Printf.sprintf "v%d-%s" step (String.make 30 'q') in
              L.put t (key k) v;
              m := SMap.add (key k) v !m
          | `Del k ->
              L.delete t (key k);
              m := SMap.remove (key k) !m
          | `Get k -> if L.get t (key k) <> SMap.find_opt (key k) !m then ok := false
          | `Scan k ->
              let got = L.scan t (key k) 5 in
              let expected =
                SMap.to_seq_from (key k) !m |> Seq.take 5 |> List.of_seq
              in
              if got <> expected then ok := false)
        ops;
      L.maintenance t;
      !ok
      && SMap.for_all (fun k v -> L.get t k = Some v) !m
      && L.scan t "" 10_000 = SMap.bindings !m)

(* Deterministic mixed-workload regression, converted from the old
   dbg/dbg.ml repro script (seed 1, 1500 ops over 300 keys, the full op
   mix including deltas and read-modify-writes). The original script
   chased a lost update around op 866; here every read is checked
   against an SMap oracle so any recurrence pinpoints the first
   divergent operation instead of a hardcoded one. *)
let test_seeded_mixed_workload_regression () =
  let t = mk () in
  let prng = Repro_util.Prng.of_int 1 in
  let m = ref SMap.empty in
  (* oracle mirror of each engine op under append_resolver semantics *)
  let o_put k v = m := SMap.add k v !m in
  let o_delete k = m := SMap.remove k !m in
  let o_delta k d =
    o_put k (match SMap.find_opt k !m with None -> d | Some b -> b ^ d)
  in
  for i = 0 to 1499 do
    let key = Printf.sprintf "key%03d" (Repro_util.Prng.int prng 300) in
    match Repro_util.Prng.int prng 12 with
    | 0 | 1 | 2 | 3 ->
        let v = Printf.sprintf "v%d-%s" i (String.make 40 'd') in
        L.put t key v;
        o_put key v
    | 4 ->
        L.delete t key;
        o_delete key
    | 5 ->
        let d = Printf.sprintf "+%d" i in
        L.apply_delta t key d;
        o_delta key d
    | 6 ->
        L.read_modify_write t key (fun v ->
            Option.value v ~default:"" ^ "!");
        o_put key (Option.value (SMap.find_opt key !m) ~default:"" ^ "!")
    | 7 ->
        if L.insert_if_absent t key (Printf.sprintf "ia%d" i) then
          o_put key (Printf.sprintf "ia%d" i)
    | 8 | 9 ->
        if L.get t key <> SMap.find_opt key !m then
          Alcotest.failf "op %d: get %s diverged from oracle" i key
    | _ ->
        let n = 1 + Repro_util.Prng.int prng 8 in
        let expected =
          SMap.to_seq_from key !m |> Seq.take n |> List.of_seq
        in
        if L.scan t key n <> expected then
          Alcotest.failf "op %d: scan %s diverged from oracle" i key
  done;
  (* full sweep, then again after compactions settle *)
  let sweep label =
    SMap.iter
      (fun k v ->
        if L.get t k <> Some v then
          Alcotest.failf "%s: key %s diverged from oracle" label k)
      !m;
    check Alcotest.int (label ^ " scan size") (SMap.cardinal !m)
      (List.length (L.scan t "" 10_000))
  in
  sweep "pre-maintenance";
  L.maintenance t;
  sweep "post-maintenance"

(* Pinned byte-identity regression for the compaction-policy extraction:
   the seed policy (score-based level pick + round-robin compaction
   pointer) now lives behind [Blsm.Compaction_policy], and this test pins
   the engine's observable behaviour — stats counters, per-level file
   layout, simulated clock, and logical contents — on a fixed seeded
   workload. Any drift in victim selection, merge order or install order
   shows up as a changed digest here. Values captured on the pre-refactor
   engine. *)
let test_policy_extraction_byte_identity () =
  (* small L1 target so deeper-level compactions run and the round-robin
     compaction pointer advances — the selection state the extraction
     moves into the policy closure *)
  let config =
    { small_config with L.base_level_bytes = 16 * 1024; level_ratio = 3.0 }
  in
  let t = L.create ~config (mk_store ()) in
  let prng = Repro_util.Prng.of_int 77 in
  for i = 0 to 5999 do
    let key = Printf.sprintf "key%03d" (Repro_util.Prng.int prng 400) in
    match Repro_util.Prng.int prng 10 with
    | 0 | 1 | 2 | 3 | 4 ->
        L.put t key (Printf.sprintf "v%d-%s" i (String.make 50 'p'))
    | 5 -> L.delete t key
    | 6 -> L.apply_delta t key (Printf.sprintf "+%d" i)
    | 7 -> ignore (L.get t key)
    | _ -> ignore (L.scan t key 4)
  done;
  L.maintenance t;
  let s = L.stats t in
  let level_profile =
    L.levels t
    |> List.map (fun li ->
           Printf.sprintf "L%d:%d:%d" li.L.li_level li.L.li_files li.L.li_bytes)
    |> String.concat ","
  in
  let contents = L.scan t "" 10_000 in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf v;
      Buffer.add_char buf '\n')
    contents;
  let scan_digest = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  let clock = Simdisk.Disk.now_us (L.disk t) in
  check Alcotest.int "flushes" 24 s.L.flushes;
  check Alcotest.int "compactions" 16 s.L.compactions;
  check Alcotest.int "slowdown_writes" 0 s.L.slowdown_writes;
  check Alcotest.int "stop_stalls" 0 s.L.stop_stalls;
  check Alcotest.int "bytes_compacted" 437163 s.L.bytes_compacted;
  check Alcotest.string "level profile"
    "L0:0:0,L1:1:942,L2:2:23310,L3:0:0,L4:0:0,L5:0:0,L6:0:0" level_profile;
  check Alcotest.int "rows" 344 (List.length contents);
  check Alcotest.string "scan digest" "3a1f77f916bff74cb60b63bbc4c6e7e7"
    scan_digest;
  check (Alcotest.float 0.001) "simulated clock" 63695.616 clock

let () =
  Alcotest.run "leveldb"
    [
      ( "leveldb",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "delete/overwrite" `Quick test_delete_and_overwrite;
          Alcotest.test_case "compactions preserve data" `Quick test_data_survives_compactions;
          Alcotest.test_case "levels sorted" `Quick test_levels_disjoint_below_l0;
          Alcotest.test_case "deletes survive" `Quick test_deletes_survive_compactions;
          Alcotest.test_case "multi-seek reads" `Quick test_multi_level_reads_cost_multiple_seeks;
          Alcotest.test_case "L0 stalls" `Quick test_l0_stop_stalls_writes;
          Alcotest.test_case "scan across levels" `Quick test_scan_across_levels;
          Alcotest.test_case "seeded mixed-workload regression" `Quick
            test_seeded_mixed_workload_regression;
          Alcotest.test_case "policy extraction byte-identity" `Quick
            test_policy_extraction_byte_identity;
          QCheck_alcotest.to_alcotest prop_model;
        ] );
    ]
