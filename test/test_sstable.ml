(* SSTable tests: build/lookup/iterate roundtrips, records spanning pages,
   extent chaining, index reopen from disk, seek accounting, and the k-way
   merging iterator's shadowing semantics. *)

let check = Alcotest.check

let entry_testable = Alcotest.testable Kv.Entry.pp Kv.Entry.equal

let mk_store ?(buffer_pages = 64) ?(page_size = 256) () =
  Pagestore.Store.create
    ~config:
      {
        Pagestore.Store.cfg_page_size = page_size;
        cfg_buffer_pages = buffer_pages;
        cfg_durability = Pagestore.Wal.Full;
      }
    Simdisk.Profile.hdd_raid0

let build store ?(format = Sstable.Sst_format.V1) ?(extent_pages = 8)
    ?(timestamp = 1) records =
  let b = Sstable.Builder.create ~format ~extent_pages store in
  List.iter (fun (k, e) -> Sstable.Builder.add b k e) records;
  let footer = Sstable.Builder.finish b ~timestamp in
  let index = Sstable.Builder.index_blob b in
  Sstable.Reader.open_in_ram store footer ~index

let records_of_iter it =
  let rec go acc =
    match Sstable.Reader.iter_next it with
    | None -> List.rev acc
    | Some r -> go (r :: acc)
  in
  go []

let test_build_and_get () =
  let store = mk_store () in
  let records =
    List.init 100 (fun i -> (Printf.sprintf "key%04d" i, Kv.Entry.Base (Printf.sprintf "val%d" i)))
  in
  let sst = build store records in
  check Alcotest.int "record count" 100 (Sstable.Reader.record_count sst);
  List.iter
    (fun (k, e) ->
      check (Alcotest.option entry_testable) k (Some e) (Sstable.Reader.get sst k))
    records;
  check (Alcotest.option entry_testable) "absent" None
    (Sstable.Reader.get sst "key5000");
  check (Alcotest.option entry_testable) "below range" None
    (Sstable.Reader.get sst "aaa");
  check (Alcotest.option entry_testable) "between keys" None
    (Sstable.Reader.get sst "key0042x")

let test_iteration_full () =
  let store = mk_store () in
  let records =
    List.init 50 (fun i -> (Printf.sprintf "k%03d" i, Kv.Entry.Base (string_of_int i)))
  in
  let sst = build store records in
  check Alcotest.int "all records" 50
    (List.length (records_of_iter (Sstable.Reader.iterator sst)));
  let out = records_of_iter (Sstable.Reader.iterator sst) in
  List.iter2
    (fun (k, e) (k', e') ->
      check Alcotest.string "key order" k k';
      check entry_testable "entry" e e')
    records out

let test_iteration_from () =
  let store = mk_store () in
  let records =
    List.init 50 (fun i -> (Printf.sprintf "k%03d" i, Kv.Entry.Base "v"))
  in
  let sst = build store records in
  let out = records_of_iter (Sstable.Reader.iterator ~from:"k025" sst) in
  check Alcotest.int "25 remaining" 25 (List.length out);
  check Alcotest.string "starts at k025" "k025" (fst (List.hd out));
  (* from between keys *)
  let out = records_of_iter (Sstable.Reader.iterator ~from:"k025x" sst) in
  check Alcotest.string "next key" "k026" (fst (List.hd out));
  (* from before all keys *)
  let out = records_of_iter (Sstable.Reader.iterator ~from:"a" sst) in
  check Alcotest.int "everything" 50 (List.length out);
  (* from past the end *)
  let out = records_of_iter (Sstable.Reader.iterator ~from:"z" sst) in
  check Alcotest.int "nothing" 0 (List.length out)

let test_records_spanning_pages () =
  (* 256-byte pages, 1000-byte values: every record spans ~4 pages *)
  let store = mk_store ~page_size:256 () in
  let records =
    List.init 20 (fun i ->
        (Printf.sprintf "key%02d" i, Kv.Entry.Base (String.make 1000 (Char.chr (65 + i)))))
  in
  let sst = build store records in
  List.iter
    (fun (k, e) ->
      check (Alcotest.option entry_testable) k (Some e) (Sstable.Reader.get sst k))
    records;
  let out = records_of_iter (Sstable.Reader.iterator sst) in
  check Alcotest.int "iteration count" 20 (List.length out)

let test_record_larger_than_extent () =
  (* a single record bigger than one extent exercises extent chaining mid-record *)
  let store = mk_store ~page_size:256 () in
  let big = String.make 5000 'x' in
  let sst = build store ~extent_pages:4 [ ("k", Kv.Entry.Base big) ] in
  check (Alcotest.option entry_testable) "big record" (Some (Kv.Entry.Base big))
    (Sstable.Reader.get sst "k")

let test_empty_component () =
  let store = mk_store () in
  let sst = build store [] in
  check Alcotest.bool "empty" true (Sstable.Reader.is_empty sst);
  check (Alcotest.option entry_testable) "get on empty" None
    (Sstable.Reader.get sst "k");
  check Alcotest.int "iter on empty" 0
    (List.length (records_of_iter (Sstable.Reader.iterator sst)))

let test_mixed_entry_kinds () =
  let store = mk_store () in
  let records =
    [
      ("a", Kv.Entry.Base "va");
      ("b", Kv.Entry.Tombstone);
      ("c", Kv.Entry.Delta [ "d1"; "d2" ]);
    ]
  in
  let sst = build store records in
  List.iter
    (fun (k, e) ->
      check (Alcotest.option entry_testable) k (Some e) (Sstable.Reader.get sst k))
    records

let test_builder_rejects_unsorted () =
  let store = mk_store () in
  let b = Sstable.Builder.create ~extent_pages:4 store in
  Sstable.Builder.add b "m" (Kv.Entry.Base "v");
  (match Sstable.Builder.add b "a" (Kv.Entry.Base "v") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected unsorted rejection");
  match Sstable.Builder.add b "m" (Kv.Entry.Base "v") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected duplicate rejection"

let test_reopen_from_meta () =
  let store = mk_store () in
  let records =
    List.init 200 (fun i -> (Printf.sprintf "key%05d" i, Kv.Entry.Base (String.make 50 'v')))
  in
  let sst = build store records in
  let blob = Sstable.Reader.meta_blob sst in
  (* simulate restart: reopen purely from the metadata blob *)
  Pagestore.Store.crash store;
  let sst' = Sstable.Reader.of_meta store blob in
  check Alcotest.int "count preserved" 200 (Sstable.Reader.record_count sst');
  List.iter
    (fun (k, e) ->
      check (Alcotest.option entry_testable) k (Some e) (Sstable.Reader.get sst' k))
    records

let test_point_lookup_seek_cost () =
  let store = mk_store ~page_size:4096 ~buffer_pages:2 () in
  let records =
    List.init 1000 (fun i ->
        (Printf.sprintf "key%06d" i, Kv.Entry.Base (String.make 1000 'v')))
  in
  let sst = build store ~extent_pages:64 records in
  let disk = Pagestore.Store.disk store in
  (* cold, scattered lookups: one seek each; continuation pages for records
     spanning a boundary are charged as sequential transfers, not seeks *)
  let before = Simdisk.Disk.snapshot disk in
  let n = 30 in
  for i = 0 to n - 1 do
    ignore (Sstable.Reader.get sst (Printf.sprintf "key%06d" (i * 29)))
  done;
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  if d.Simdisk.Disk.seeks < n - 2 || d.Simdisk.Disk.seeks > n + 2 then
    Alcotest.failf "expected ~%d seeks, got %d" n d.Simdisk.Disk.seeks

let test_free_releases_space () =
  let store = mk_store () in
  let records = List.init 100 (fun i -> (Printf.sprintf "k%04d" i, Kv.Entry.Base (String.make 100 'v'))) in
  let sst = build store records in
  let before = Pagestore.Store.stored_bytes store in
  Sstable.Reader.free sst;
  if Pagestore.Store.stored_bytes store >= before then
    Alcotest.fail "free did not reclaim space"

(* ------------------------------------------------------------------ *)
(* Restart points (derived in-page record-start offsets) *)

let test_restart_offsets_roundtrip () =
  (* Derived starts must agree with a linear decode of the raw page:
     count = the n_starts header, offsets strictly increasing, first one
     just past the continuation bytes. *)
  let store = mk_store ~page_size:256 () in
  let records =
    List.init 120 (fun i ->
        ( Printf.sprintf "key%04d" i,
          Kv.Entry.Base (String.make (7 + (i * 13 mod 90)) 'v') ))
  in
  let sst = build store records in
  let footer = Sstable.Reader.footer sst in
  let buf = Bytes.create 256 in
  List.iter
    (fun (start, length) ->
      for id = start to start + length - 1 do
        Pagestore.Store.read_page_direct store id buf;
        if Sstable.Sst_format.page_ok_bytes buf then begin
          let n_starts =
            Char.code (Bytes.get buf 0) lor (Char.code (Bytes.get buf 1) lsl 8)
          in
          let cont =
            Char.code (Bytes.get buf 2)
            lor (Char.code (Bytes.get buf 3) lsl 8)
            lor (Char.code (Bytes.get buf 4) lsl 16)
            lor (Char.code (Bytes.get buf 5) lsl 24)
          in
          let starts = Sstable.Sst_format.record_starts buf in
          check Alcotest.int "starts = n_starts header" n_starts
            (Array.length starts);
          if n_starts > 0 then
            check Alcotest.int "first start after continuation"
              (Sstable.Sst_format.header_bytes + cont)
              starts.(0);
          Array.iteri
            (fun i s ->
              if i > 0 && s <= starts.(i - 1) then
                Alcotest.failf "starts not increasing at %d" i;
              if s < Sstable.Sst_format.header_bytes || s >= 256 then
                Alcotest.failf "start %d out of page bounds" s)
            starts
        end
      done)
    footer.Sstable.Sst_format.extents;
  ignore (Sstable.Reader.get sst "key0000")

let test_restart_corruption_detected () =
  (* Flip a bit in the first record's body-length varint — the byte the
     restart walk navigates by. The page CRC must catch it at frame load:
     a typed Corrupt, never a silent mis-navigation. *)
  let store = mk_store ~page_size:4096 ~buffer_pages:8 () in
  let records =
    List.init 300 (fun i ->
        (Printf.sprintf "key%06d" i, Kv.Entry.Base (String.make 50 'v')))
  in
  let sst = build store records in
  (* Warm lookups work. *)
  check Alcotest.bool "warm get" true (Sstable.Reader.get sst "key000100" <> None);
  let footer = Sstable.Reader.footer sst in
  let first_page = fst (List.hd footer.Sstable.Sst_format.extents) in
  (* Drop the pool so the next access re-loads the rotted platter copy. *)
  Pagestore.Store.crash store;
  ignore
    (Pagestore.Store.corrupt_page store first_page ~byte:Sstable.Sst_format.header_bytes
       ~bit:3);
  (match Sstable.Reader.get sst "key000000" with
  | exception Sstable.Sst_format.Corrupt _ -> ()
  | Some _ -> Alcotest.fail "lookup decoded a corrupted page"
  | None -> Alcotest.fail "corruption silently mis-navigated to a miss");
  (* The n_starts header itself (restart count) is covered too. *)
  Pagestore.Store.crash store;
  ignore (Pagestore.Store.corrupt_page store first_page ~byte:0 ~bit:0);
  match Sstable.Reader.get sst "key000000" with
  | exception Sstable.Sst_format.Corrupt _ -> ()
  | _ -> Alcotest.fail "header corruption not detected"

let test_truncated_mid_record_is_typed_corrupt () =
  (* Regression for a real find of lint rule E001: when the data pages
     end inside a record body (truncated table), the reader's internal
     End_of_component record-boundary exception used to leak through
     the cursor — across the replication and DST protocol boundaries —
     instead of the typed Corrupt the scan contract declares. *)
  let store = mk_store () in
  (* One record whose body spans several 256-byte pages, so a footer
     one page short ends mid-body. *)
  let big = String.make 700 'v' in
  let b =
    Sstable.Builder.create ~format:Sstable.Sst_format.V1 ~extent_pages:4 store
  in
  Sstable.Builder.add b "k" (Kv.Entry.Base big);
  let footer = Sstable.Builder.finish b ~timestamp:1 in
  let index = Sstable.Builder.index_blob b in
  let truncated =
    {
      footer with
      Sstable.Sst_format.data_pages = footer.Sstable.Sst_format.data_pages - 1;
    }
  in
  match
    let sst = Sstable.Reader.open_in_ram store truncated ~index in
    records_of_iter (Sstable.Reader.iterator sst)
  with
  | exception Sstable.Sst_format.Corrupt _ -> ()
  | exception e ->
      Alcotest.failf "internal exception leaked: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "truncated table iterated cleanly"

let test_verified_once_semantics () =
  (* While the frame sits verified in the pool, lookups skip the CRC; the
     check runs again at the load after a crash drops the pool — platter
     rot is caught exactly where it can first be observed. *)
  let store = mk_store ~page_size:4096 ~buffer_pages:8 () in
  let records =
    List.init 100 (fun i ->
        (Printf.sprintf "key%06d" i, Kv.Entry.Base (String.make 40 'v')))
  in
  let sst = build store records in
  check Alcotest.bool "cold get" true (Sstable.Reader.get sst "key000001" <> None);
  let footer = Sstable.Reader.footer sst in
  let first_page = fst (List.hd footer.Sstable.Sst_format.extents) in
  ignore (Pagestore.Store.corrupt_page store first_page ~byte:100 ~bit:1);
  (* Pool hit: the resident frame is still the good copy. *)
  check Alcotest.bool "hit ignores platter rot" true
    (Sstable.Reader.get sst "key000001" <> None);
  Pagestore.Store.crash store;
  match Sstable.Reader.get sst "key000001" with
  | exception Sstable.Sst_format.Corrupt _ -> ()
  | _ -> Alcotest.fail "reload did not re-verify"

let test_tiny_pool_pin_release () =
  (* Lookups and closed iterators must release their pins: thousands of
     operations through a 2-frame pool would otherwise exhaust it. *)
  let store = mk_store ~page_size:256 ~buffer_pages:2 () in
  let records =
    List.init 200 (fun i ->
        (Printf.sprintf "key%04d" i, Kv.Entry.Base (String.make 300 'v')))
  in
  let sst = build store records in
  for round = 0 to 4 do
    List.iteri
      (fun i (k, e) ->
        ignore round;
        if i mod 3 = 0 then
          check (Alcotest.option entry_testable) k (Some e)
            (Sstable.Reader.get sst k))
      records;
    (* Abandon a cached iterator mid-stream; close must unpin. *)
    let it = Sstable.Reader.cached_iterator ~from:"key0050" sst in
    ignore (Sstable.Reader.iter_next it);
    Sstable.Reader.iter_close it;
    Sstable.Reader.iter_close it (* idempotent *)
  done

let mk_prop_get_equals_linear ~name ~format =
  (* The indexed search (restart binary search in V1, restart search plus
     prefix reconstruction and zone maps in V2) must be observationally
     identical to the seed's linear decode — for present keys, absent keys
     between records, and keys off both ends — across record mixes that
     exercise page spills (128-byte pages, values up to 300 bytes). *)
  QCheck.Test.make ~name ~count:60
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 100) (pair (int_range 0 9999) (int_range 0 300)))
        (list_of_size Gen.(1 -- 40) (int_range 0 9999)))
    (fun (pairs, probes) ->
      let module M = Map.Make (String) in
      let m =
        List.fold_left
          (fun m (k, vlen) ->
            M.add
              (Printf.sprintf "key%05d" k)
              (Kv.Entry.Base (String.make vlen 'v'))
              m)
          M.empty pairs
      in
      let records = M.bindings m in
      let store = mk_store ~page_size:128 () in
      let sst = build store ~format ~extent_pages:4 records in
      let agree key =
        Sstable.Reader.get sst key = Sstable.Reader.get_linear sst key
        && Sstable.Reader.get_with_lsn sst key
           = Sstable.Reader.get_linear_with_lsn sst key
        && Sstable.Reader.locate sst key = Sstable.Reader.locate_linear sst key
      in
      List.for_all (fun (k, _) -> agree k) records
      && List.for_all
           (fun p ->
             (* probe keys hit present records, gaps, and both ends *)
             agree (Printf.sprintf "key%05d" p)
             && agree (Printf.sprintf "key%05dx" p))
           probes
      && agree "" && agree "zzz")

let prop_restart_get_equals_linear =
  mk_prop_get_equals_linear ~name:"restart get = linear get"
    ~format:Sstable.Sst_format.V1

let mk_prop_roundtrip ~name ~format =
  QCheck.Test.make ~name ~count:60
    QCheck.(
      list_of_size
        Gen.(1 -- 100)
        (pair (int_range 0 9999) (int_range 0 300)))
    (fun pairs ->
      let module M = Map.Make (String) in
      let m =
        List.fold_left
          (fun m (k, vlen) ->
            M.add (Printf.sprintf "key%05d" k) (Kv.Entry.Base (String.make vlen 'v')) m)
          M.empty pairs
      in
      let records = M.bindings m in
      let store = mk_store ~page_size:128 () in
      let sst = build store ~format ~extent_pages:4 records in
      let out = records_of_iter (Sstable.Reader.iterator sst) in
      out = records
      && List.for_all
           (fun (k, e) -> Sstable.Reader.get sst k = Some e)
           records)

let prop_roundtrip =
  mk_prop_roundtrip ~name:"sstable build/iterate roundtrip"
    ~format:Sstable.Sst_format.V1

(* ------------------------------------------------------------------ *)
(* V2 pages: prefix compression, zone maps, Eytzinger fence pointers *)

let v2 = Sstable.Sst_format.V2

let prop_v2_get_equals_linear =
  mk_prop_get_equals_linear ~name:"v2 get = linear get" ~format:v2

let prop_v2_roundtrip = mk_prop_roundtrip ~name:"v2 build/iterate roundtrip" ~format:v2

let prop_fence_locate_equals_linear =
  (* The branch-free Eytzinger descent must agree with the in-order
     linear walk on every probe, and the slot traversal must reproduce
     the sorted input — including the empty fence. *)
  QCheck.Test.make ~name:"fence locate = locate_linear" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 80) (int_range 0 999))
        (list_of_size Gen.(1 -- 30) (int_range 0 999)))
    (fun (ks, probes) ->
      let module S = Set.Make (String) in
      let keys =
        Array.of_list
          (S.elements (S.of_list (List.map (Printf.sprintf "k%03d") ks)))
      in
      let pos = Array.mapi (fun i _ -> i * 3) keys in
      let f = Sstable.Sst_format.Fence.of_sorted ~keys ~pos () in
      let open Sstable.Sst_format.Fence in
      let agree k = locate f k = locate_linear f k in
      let rec walk acc = function
        | None -> List.rev acc
        | Some s -> walk (key f s :: acc) (succ_slot f s)
      in
      walk [] (first_slot f) = Array.to_list keys
      && Array.for_all agree keys
      && List.for_all
           (fun p ->
             agree (Printf.sprintf "k%03d" p) && agree (Printf.sprintf "k%03dq" p))
           probes
      && agree "" && agree "zzzz")

let read_varint s off =
  let rec go off shift acc =
    let b = Char.code s.[off] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b >= 0x80 then go (off + 1) (shift + 7) acc else (acc, off + 1)
  in
  go off 0 0

let v2_roundtrip_one ~prev key entry lsn =
  let buf = Buffer.create 64 in
  Sstable.Sst_format.encode_record_v2 buf ~prev key ~lsn entry;
  let s = Buffer.contents buf in
  let body_len, off = read_varint s 0 in
  if off + body_len <> String.length s then failwith "framing length mismatch";
  Sstable.Sst_format.decode_body_v2 ~prev (String.sub s off body_len)

let prop_v2_body_roundtrip =
  (* encode_record_v2/decode_body_v2 over a tiny alphabet so shared
     prefixes of every length (0 .. full key) occur, empty strings
     included. *)
  let gen =
    QCheck.Gen.(
      let k = string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 10) in
      quad k k (0 -- 60) (0 -- 5000))
  in
  QCheck.Test.make ~name:"v2 body roundtrip (prefix compression)" ~count:400
    (QCheck.make gen)
    (fun (prev, key, vlen, lsn) ->
      let entry =
        if vlen = 0 then Kv.Entry.Tombstone else Kv.Entry.Base (String.make vlen 'v')
      in
      v2_roundtrip_one ~prev key entry lsn = (key, entry, lsn))

let test_v2_prefix_edge_cases () =
  let rt ~prev key entry lsn =
    let k', e', l' = v2_roundtrip_one ~prev key entry lsn in
    check Alcotest.string "key" key k';
    check entry_testable "entry" entry e';
    check Alcotest.int "lsn" lsn l'
  in
  rt ~prev:"" "" Kv.Entry.Tombstone 0;
  rt ~prev:"" "key0000" (Kv.Entry.Base "v") 1;
  (* shared prefix equals the whole key: suffix is empty *)
  rt ~prev:"key0042" "key0042" (Kv.Entry.Base "x") 7;
  rt ~prev:"key0042" "key0042x" (Kv.Entry.Base "y") 8;
  (* key is a proper prefix of prev *)
  rt ~prev:"key0042x" "key0099" (Kv.Entry.Delta [ "d" ]) 9;
  rt ~prev:"abc" "abd" (Kv.Entry.Base "") 0;
  (* a rotted shared-length varint (> |prev|) must raise, not fabricate *)
  let buf = Buffer.create 16 in
  Sstable.Sst_format.encode_record_v2 buf ~prev:"abcdef" "abcdefg" ~lsn:0
    (Kv.Entry.Base "v");
  let s = Buffer.contents buf in
  let body_len, off = read_varint s 0 in
  match Sstable.Sst_format.decode_body_v2 ~prev:"ab" (String.sub s off body_len) with
  | exception Sstable.Sst_format.Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized shared length not detected"

let test_v2_build_and_get () =
  let store = mk_store () in
  let records =
    List.init 100 (fun i ->
        (Printf.sprintf "key%04d" i, Kv.Entry.Base (Printf.sprintf "val%d" i)))
  in
  let sst = build store ~format:v2 records in
  check Alcotest.int "record count" 100 (Sstable.Reader.record_count sst);
  List.iter
    (fun (k, e) ->
      check (Alcotest.option entry_testable) k (Some e) (Sstable.Reader.get sst k))
    records;
  check (Alcotest.option entry_testable) "absent" None (Sstable.Reader.get sst "key5000");
  check (Alcotest.option entry_testable) "below range" None (Sstable.Reader.get sst "aaa");
  check (Alcotest.option entry_testable) "between keys" None
    (Sstable.Reader.get sst "key0042x")

let test_v2_spanning_pages () =
  (* 256-byte pages, 1000-byte values: every record spans ~4 pages, so
     prefix chains restart across spills *)
  let store = mk_store ~page_size:256 () in
  let records =
    List.init 20 (fun i ->
        (Printf.sprintf "key%02d" i, Kv.Entry.Base (String.make 1000 (Char.chr (65 + i)))))
  in
  let sst = build store ~format:v2 records in
  List.iter
    (fun (k, e) ->
      check (Alcotest.option entry_testable) k (Some e) (Sstable.Reader.get sst k))
    records;
  check Alcotest.int "iteration count" 20
    (List.length (records_of_iter (Sstable.Reader.iterator sst)))

let test_v2_iteration_from () =
  let store = mk_store () in
  let records = List.init 50 (fun i -> (Printf.sprintf "k%03d" i, Kv.Entry.Base "v")) in
  let sst = build store ~format:v2 records in
  let out = records_of_iter (Sstable.Reader.iterator ~from:"k025" sst) in
  check Alcotest.int "25 remaining" 25 (List.length out);
  check Alcotest.string "starts at k025" "k025" (fst (List.hd out));
  let out = records_of_iter (Sstable.Reader.iterator ~from:"k025x" sst) in
  check Alcotest.string "next key" "k026" (fst (List.hd out));
  let out = records_of_iter (Sstable.Reader.iterator ~from:"a" sst) in
  check Alcotest.int "everything" 50 (List.length out);
  let out = records_of_iter (Sstable.Reader.iterator ~from:"z" sst) in
  check Alcotest.int "nothing" 0 (List.length out)

let test_v2_reopen_from_meta () =
  let store = mk_store () in
  let records =
    List.init 200 (fun i -> (Printf.sprintf "key%05d" i, Kv.Entry.Base (String.make 50 'v')))
  in
  let sst = build store ~format:v2 records in
  let blob = Sstable.Reader.meta_blob sst in
  Pagestore.Store.crash store;
  let sst' = Sstable.Reader.of_meta store blob in
  let f = Sstable.Reader.footer sst' in
  check Alcotest.bool "SST2 magic survives reopen" true
    (f.Sstable.Sst_format.version = v2);
  check Alcotest.int "count preserved" 200 (Sstable.Reader.record_count sst');
  List.iter
    (fun (k, e) ->
      check (Alcotest.option entry_testable) k (Some e) (Sstable.Reader.get sst' k))
    records

let read_bytes_of d =
  d.Simdisk.Disk.seq_read_bytes + d.Simdisk.Disk.random_read_bytes

let test_v2_zone_map_miss_zero_io () =
  (* A point miss whose key sorts after its floor page's zone max is
     answered from the in-RAM fence alone: no page read even cold. *)
  let store = mk_store ~page_size:256 ~buffer_pages:4 () in
  let records =
    List.init 200 (fun i ->
        (Printf.sprintf "key%04d" (i * 2), Kv.Entry.Base (String.make 40 'v')))
  in
  let sst = build store ~format:v2 records in
  let rejected =
    List.filter_map
      (fun (k, _) ->
        let p = k ^ "!" in
        match Sstable.Reader.locate sst p with None -> Some p | Some _ -> None)
      records
  in
  (* every page's last key generates one such probe *)
  if List.length rejected < 3 then
    Alcotest.failf "expected zone-rejected probes, got %d" (List.length rejected);
  List.iter
    (fun p ->
      check (Alcotest.option Alcotest.int) ("linear agrees on " ^ p) None
        (Sstable.Reader.locate_linear sst p))
    rejected;
  Pagestore.Store.crash store;
  let disk = Pagestore.Store.disk store in
  let before = Simdisk.Disk.snapshot disk in
  List.iter
    (fun p -> check (Alcotest.option entry_testable) p None (Sstable.Reader.get sst p))
    rejected;
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  check Alcotest.int "zero bytes read" 0 (read_bytes_of d)

let test_v2_scan_zone_skip_bytes () =
  (* A tail scan must not pay for the pages the fence lets it skip:
     cold bytes-read for the last 10 records is a small fraction of a
     cold full scan. *)
  let store = mk_store ~page_size:256 ~buffer_pages:4 () in
  let records =
    List.init 300 (fun i ->
        (Printf.sprintf "key%04d" i, Kv.Entry.Base (String.make 60 'v')))
  in
  let sst = build store ~format:v2 records in
  let disk = Pagestore.Store.disk store in
  Pagestore.Store.crash store;
  let before = Simdisk.Disk.snapshot disk in
  let out = records_of_iter (Sstable.Reader.iterator ~from:"key0289x" sst) in
  check Alcotest.int "tail records" 10 (List.length out);
  let tail = read_bytes_of (Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk)) in
  Pagestore.Store.crash store;
  let before = Simdisk.Disk.snapshot disk in
  let all = records_of_iter (Sstable.Reader.iterator sst) in
  check Alcotest.int "all records" 300 (List.length all);
  let full = read_bytes_of (Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk)) in
  if tail * 5 > full then
    Alcotest.failf "tail scan read %d bytes vs full scan %d" tail full

(* -------------------------------------------------------------------- *)
(* Merge iterator *)

let pull_of_list l =
  let r = ref l in
  fun () ->
    match !r with
    | [] -> None
    | x :: rest ->
        r := rest;
        Some x

let resolver = Kv.Entry.append_resolver

(* sources feed (key, entry, lsn=0); results compared as pairs *)
let merge_all ~drop inputs =
  let inputs =
    List.map
      (fun (p, pull) ->
        ( p,
          fun () ->
            match pull () with Some (k, e) -> Some (k, e, 0) | None -> None ))
      inputs
  in
  let m = Sstable.Merge_iter.create ~resolver ~drop_tombstones:drop inputs in
  let out = ref [] in
  Sstable.Merge_iter.drain m (fun k e _ -> out := (k, e) :: !out);
  List.rev !out

let test_merge_shadowing () =
  let newer = [ ("a", Kv.Entry.Base "new"); ("c", Kv.Entry.Base "c1") ] in
  let older = [ ("a", Kv.Entry.Base "old"); ("b", Kv.Entry.Base "b1") ] in
  let out =
    merge_all ~drop:false [ (0, pull_of_list newer); (1, pull_of_list older) ]
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string entry_testable))
    "shadowed merge"
    [ ("a", Kv.Entry.Base "new"); ("b", Kv.Entry.Base "b1"); ("c", Kv.Entry.Base "c1") ]
    out

let test_merge_tombstone_dropped_at_bottom () =
  let newer = [ ("a", Kv.Entry.Tombstone) ] in
  let older = [ ("a", Kv.Entry.Base "old"); ("b", Kv.Entry.Base "b1") ] in
  let out = merge_all ~drop:true [ (0, pull_of_list newer); (1, pull_of_list older) ] in
  check Alcotest.int "tombstone elided" 1 (List.length out);
  check Alcotest.string "b survives" "b" (fst (List.hd out))

let test_merge_tombstone_kept_mid_tree () =
  let newer = [ ("a", Kv.Entry.Tombstone) ] in
  let older = [ ("a", Kv.Entry.Base "old") ] in
  let out = merge_all ~drop:false [ (0, pull_of_list newer); (1, pull_of_list older) ] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string entry_testable))
    "tombstone persists" [ ("a", Kv.Entry.Tombstone) ] out

let test_merge_delta_resolution_at_bottom () =
  let newer = [ ("a", Kv.Entry.Delta [ "+d" ]) ] in
  let out = merge_all ~drop:true [ (0, pull_of_list newer) ] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string entry_testable))
    "orphan delta becomes base" [ ("a", Kv.Entry.Base "+d") ] out

let test_merge_three_way () =
  let c0 = [ ("k", Kv.Entry.Delta [ "+2" ]) ] in
  let c1 = [ ("k", Kv.Entry.Delta [ "+1" ]) ] in
  let c2 = [ ("k", Kv.Entry.Base "base") ] in
  let out =
    merge_all ~drop:true
      [ (0, pull_of_list c0); (1, pull_of_list c1); (2, pull_of_list c2) ]
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string entry_testable))
    "deltas apply oldest-first" [ ("k", Kv.Entry.Base "base+1+2") ] out

let prop_merge_equals_map_union =
  (* merging random sorted streams equals right-biased map union where the
     lower priority stream wins (all Base entries) *)
  QCheck.Test.make ~name:"merge = shadowed union" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 50) (int_range 0 99))
        (list_of_size Gen.(0 -- 50) (int_range 0 99)))
    (fun (ks1, ks2) ->
      let module M = Map.Make (String) in
      let mk tag ks =
        List.fold_left
          (fun m k -> M.add (Printf.sprintf "%02d" k) (Kv.Entry.Base (tag ^ string_of_int k)) m)
          M.empty ks
      in
      let m1 = mk "new" ks1 and m2 = mk "old" ks2 in
      let expected = M.union (fun _ a _ -> Some a) m1 m2 in
      let out =
        merge_all ~drop:false
          [ (0, pull_of_list (M.bindings m1)); (1, pull_of_list (M.bindings m2)) ]
      in
      out = M.bindings expected)

let () =
  Alcotest.run "sstable"
    [
      ( "reader",
        [
          Alcotest.test_case "build and get" `Quick test_build_and_get;
          Alcotest.test_case "iterate full" `Quick test_iteration_full;
          Alcotest.test_case "iterate from" `Quick test_iteration_from;
          Alcotest.test_case "spanning pages" `Quick test_records_spanning_pages;
          Alcotest.test_case "bigger than extent" `Quick test_record_larger_than_extent;
          Alcotest.test_case "empty component" `Quick test_empty_component;
          Alcotest.test_case "mixed entries" `Quick test_mixed_entry_kinds;
          Alcotest.test_case "unsorted rejected" `Quick test_builder_rejects_unsorted;
          Alcotest.test_case "reopen from meta" `Quick test_reopen_from_meta;
          Alcotest.test_case "lookup seek cost" `Quick test_point_lookup_seek_cost;
          Alcotest.test_case "free releases space" `Quick test_free_releases_space;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
      ( "restarts",
        [
          Alcotest.test_case "offsets roundtrip" `Quick
            test_restart_offsets_roundtrip;
          Alcotest.test_case "corruption detected" `Quick
            test_restart_corruption_detected;
          Alcotest.test_case "truncated mid-record" `Quick
            test_truncated_mid_record_is_typed_corrupt;
          Alcotest.test_case "verified once" `Quick test_verified_once_semantics;
          Alcotest.test_case "tiny pool pins" `Quick test_tiny_pool_pin_release;
          QCheck_alcotest.to_alcotest prop_restart_get_equals_linear;
        ] );
      ( "v2",
        [
          Alcotest.test_case "build and get" `Quick test_v2_build_and_get;
          Alcotest.test_case "spanning pages" `Quick test_v2_spanning_pages;
          Alcotest.test_case "iterate from" `Quick test_v2_iteration_from;
          Alcotest.test_case "reopen from meta" `Quick test_v2_reopen_from_meta;
          Alcotest.test_case "prefix edge cases" `Quick test_v2_prefix_edge_cases;
          Alcotest.test_case "zone map miss zero io" `Quick
            test_v2_zone_map_miss_zero_io;
          Alcotest.test_case "scan zone skip bytes" `Quick
            test_v2_scan_zone_skip_bytes;
          QCheck_alcotest.to_alcotest prop_fence_locate_equals_linear;
          QCheck_alcotest.to_alcotest prop_v2_body_roundtrip;
          QCheck_alcotest.to_alcotest prop_v2_get_equals_linear;
          QCheck_alcotest.to_alcotest prop_v2_roundtrip;
        ] );
      ( "merge_iter",
        [
          Alcotest.test_case "shadowing" `Quick test_merge_shadowing;
          Alcotest.test_case "tombstone dropped" `Quick test_merge_tombstone_dropped_at_bottom;
          Alcotest.test_case "tombstone kept" `Quick test_merge_tombstone_kept_mid_tree;
          Alcotest.test_case "orphan delta" `Quick test_merge_delta_resolution_at_bottom;
          Alcotest.test_case "three way" `Quick test_merge_three_way;
          QCheck_alcotest.to_alcotest prop_merge_equals_map_union;
        ] );
    ]
