(* DST harness tests:
   - every committed repro under repros/ replays clean (each one is a
     minimized trace that exposed a real bug before its fix);
   - the shrinker demonstrably minimizes: a deliberately-broken driver
     stub reduces from a 160-step plan to a handful of ops;
   - pinned-seed crash-point plans for the partitioned tree and the
     replication follower pass the full invariant battery;
   - repro files round-trip through JSON;
   - same-seed runs are byte-identical (the determinism contract). *)

(* Under `dune runtest` the cwd is the test dir (deps are staged next to
   the binary); allow running from the workspace root too. *)
let repros_dir =
  if Sys.file_exists "repros" then "repros" else Filename.concat "test" "repros"

(* --- committed repros replay clean ------------------------------- *)

let test_repros () =
  let files =
    Sys.readdir repros_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "at least one committed repro" true (files <> []);
  List.iter
    (fun f ->
      let plan = Dst.Repro.load (Filename.concat repros_dir f) in
      let outcome = Dst.replay plan in
      if not outcome.Dst.Interp.ok then
        Alcotest.failf "repro %s regressed:\n  %s" f
          (String.concat "\n  " outcome.Dst.Interp.violations))
    files

(* --- the shrinker proves itself on a known-bad driver ------------- *)

(* The stub bug: deletes are silently dropped. Any plan that deletes a
   live key and then observes it fails; the minimal repro is a put, the
   delete, and one observation. *)
let broken_driver ~seed () =
  let d = Dst.Driver.make_exn "blsm" ~seed () in
  { d with Dst.Driver.delete = (fun _ -> ()) }

let test_shrinker () =
  let caps = Option.get (Dst.Driver.caps_of_name "blsm") in
  let seed = 20 in
  let plan = Dst.Plan.generate ~caps ~driver:"blsm" ~seed () in
  let mk = broken_driver ~seed in
  Alcotest.(check bool)
    "full plan fails against the broken driver" true
    (Dst.Shrink.fails mk plan);
  let small, stats = Dst.Shrink.minimize ~mk plan in
  Alcotest.(check bool)
    "shrunk plan still fails" true
    (Dst.Shrink.fails mk small);
  let n = List.length small.Dst.Plan.steps in
  if n > 10 then
    Alcotest.failf "shrinker left %d steps (> 10) after %d candidates" n
      stats.Dst.Shrink.candidates;
  (* and the minimized trace must NOT fail on the healthy engine: the
     bug is in the stub, not the tree *)
  let healthy = Dst.Driver.make_exn "blsm" ~seed in
  Alcotest.(check bool)
    "minimized trace passes on the healthy engine" false
    (Dst.Shrink.fails healthy small)

(* --- pinned crash-point plans ------------------------------------ *)

(* Partitioned: cross-partition batches and boundary keys with WAL/page
   crash faults and explicit recoveries. The invariant battery (state
   equivalence after recovery, counters, scrub) runs at checkpoints. *)
let partitioned_crash_plan =
  let p x = Dst.Plan.B_put (x, "v-" ^ x) in
  {
    Dst.Plan.driver = "partitioned";
    seed = 4242;
    note = "pinned: cross-partition batch vs crash points";
    steps =
      [
        { Dst.Plan.faults = []; op = Dst.Plan.Put ("key099", "a") };
        { Dst.Plan.faults = []; op = Dst.Plan.Put ("key100", "b") };
        {
          Dst.Plan.faults =
            [ Dst.Plan.F_crash_wal { after = 1; torn = false } ];
          op = Dst.Plan.Write_batch [ p "key101"; p "key199"; p "key201" ];
        };
        { Dst.Plan.faults = []; op = Dst.Plan.Checkpoint };
        {
          Dst.Plan.faults = [];
          op = Dst.Plan.Write_batch [ p "key050"; p "key150"; p "key250" ];
        };
        {
          Dst.Plan.faults =
            [ Dst.Plan.F_crash_page { after = 2; torn = true } ];
          op = Dst.Plan.Flush;
        };
        { Dst.Plan.faults = []; op = Dst.Plan.Crash_recover };
        { Dst.Plan.faults = []; op = Dst.Plan.Scan ("key0", 20) };
        { Dst.Plan.faults = []; op = Dst.Plan.Checkpoint };
      ];
  }

(* Replication: deltas racing follower crashes across catch_up — the
   shape that exposed the catch_up position-atomicity bug. *)
let follower_crash_plan =
  {
    Dst.Plan.driver = "replicated";
    seed = 1717;
    note = "pinned: follower crash points across catch_up";
    steps =
      [
        { Dst.Plan.faults = []; op = Dst.Plan.Put ("key010", "x") };
        { Dst.Plan.faults = []; op = Dst.Plan.Delta ("key010", "+a") };
        {
          Dst.Plan.faults =
            [ Dst.Plan.F_follower_crash_wal { after = 2; torn = false } ];
          op = Dst.Plan.Catch_up;
        };
        { Dst.Plan.faults = []; op = Dst.Plan.Delta ("key010", "+b") };
        {
          Dst.Plan.faults =
            [ Dst.Plan.F_follower_crash_wal { after = 1; torn = true } ];
          op = Dst.Plan.Catch_up;
        };
        { Dst.Plan.faults = []; op = Dst.Plan.Crash_follower };
        { Dst.Plan.faults = []; op = Dst.Plan.Catch_up };
        { Dst.Plan.faults = []; op = Dst.Plan.Checkpoint };
      ];
  }

let test_pinned plan () =
  let outcome = Dst.replay plan in
  if not outcome.Dst.Interp.ok then
    Alcotest.failf "pinned plan %S failed:\n  %s" plan.Dst.Plan.note
      (String.concat "\n  " outcome.Dst.Interp.violations)

(* --- generated pinned seeds with elevated fault rates ------------- *)

let test_generated_seed ~driver ~seed () =
  let params =
    {
      Dst.Plan.default_params with
      Dst.Plan.n_steps = 80;
      fault_rate = 0.15;
      checkpoint_every = 20;
    }
  in
  let _, outcome = Dst.run_seed ~params ~driver_name:driver ~seed () in
  if not outcome.Dst.Interp.ok then
    Alcotest.failf "driver=%s seed=%d failed:\n  %s" driver seed
      (String.concat "\n  " outcome.Dst.Interp.violations)

(* --- JSON round-trip --------------------------------------------- *)

let test_roundtrip () =
  let caps = Option.get (Dst.Driver.caps_of_name "replicated") in
  let plan = Dst.Plan.generate ~caps ~driver:"replicated" ~seed:5 () in
  let back = Dst.Repro.of_json (Dst.Repro.to_json plan) in
  Alcotest.(check bool) "JSON round-trip preserves the plan" true (plan = back);
  (* binary-ish content survives the \u escaping *)
  let odd =
    {
      plan with
      Dst.Plan.note = "bytes: \000\001\xff\"quote\"\n";
      steps =
        [ { Dst.Plan.faults = []; op = Dst.Plan.Put ("k\000\xfe", "v\x7f\n") } ];
    }
  in
  let back = Dst.Repro.of_json (Dst.Repro.to_json odd) in
  Alcotest.(check bool) "escaped bytes round-trip" true (odd = back)

(* --- determinism: same seed, same bytes --------------------------- *)

let test_determinism ~driver ~seed () =
  let params =
    { Dst.Plan.default_params with Dst.Plan.n_steps = 60 }
  in
  let _, a = Dst.run_seed ~params ~driver_name:driver ~seed () in
  let _, b = Dst.run_seed ~params ~driver_name:driver ~seed () in
  Alcotest.(check string)
    (Printf.sprintf "same-seed reports identical (%s)" driver)
    a.Dst.Interp.report b.Dst.Interp.report

let () =
  Alcotest.run "dst"
    [
      ( "repros",
        [ Alcotest.test_case "committed repros replay clean" `Quick test_repros ] );
      ( "shrinker",
        [
          Alcotest.test_case "broken driver reduces to <= 10 ops" `Quick
            test_shrinker;
        ] );
      ( "pinned",
        [
          Alcotest.test_case "partitioned crash points" `Quick
            (test_pinned partitioned_crash_plan);
          Alcotest.test_case "follower crash points" `Quick
            (test_pinned follower_crash_plan);
          Alcotest.test_case "partitioned seed 91" `Quick
            (test_generated_seed ~driver:"partitioned" ~seed:91);
          Alcotest.test_case "replicated seed 91" `Quick
            (test_generated_seed ~driver:"replicated" ~seed:91);
        ] );
      ( "format",
        [ Alcotest.test_case "JSON round-trip" `Quick test_roundtrip ] );
      ( "determinism",
        [
          Alcotest.test_case "blsm" `Quick
            (test_determinism ~driver:"blsm" ~seed:11);
          Alcotest.test_case "replicated" `Quick
            (test_determinism ~driver:"replicated" ~seed:11);
        ] );
    ]
