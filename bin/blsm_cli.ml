(* blsm_cli: interactive shell over a bLSM tree.

   A REPL for poking at the data structure: writes, reads, scans, deltas,
   crash/recovery, merge forcing, and live introspection of levels, I/O
   counters and scheduler state. The store is an in-memory simulation, so
   a session is ephemeral by design — `crash` + implicit recovery shows
   exactly what would survive on a real device.

   Run with:  dune exec bin/blsm_cli.exe -- [--disk hdd|ssd] [--c0-kb N]
              [--scheduler naive|gear|spring] *)

let usage = {|commands:
  put <key> <value>        blind write (insert or overwrite)
  get <key>                point lookup
  del <key>                delete (tombstone write)
  delta <key> <patch>      zero-seek delta write (append semantics)
  ifabsent <key> <value>   insert if not exists
  rmw <key> <suffix>       read-modify-write: append <suffix>
  scan <key> <n>           up to n records with key >= <key>
  fill <n> [<bytes>]       bulk-insert n synthetic records
  flush                    drain C0 and all merges to disk
  crash                    power-fail and recover (WAL replay)
  levels                   component sizes and timestamps
  stats [json]             tree metrics (registry dump, tree.*)
  io [json]                disk metrics (registry dump, disk.*)
  metrics [json]           full metrics registry (tree + store stack)
  trace on <file> [jsonl]  start tracing to <file> (Chrome JSON default)
  trace off                stop tracing and finalise the file
  help                     this text
  quit                     exit|}

(* ------------------------------------------------------------------ *)
(* `blsm_cli dst ...`: the deterministic-simulation harness face.
   Dispatched before the REPL; exit 0 = invariants held, 1 = failure. *)

let dst_usage =
  {|usage:
  blsm_cli dst replay <file.json>         replay a saved repro trace
  blsm_cli dst run <driver> <seed> [steps]
      generate + run one seeded plan; on failure, shrink and write
      dst/repro_<driver>_seed<seed>.json
  drivers: |}
  ^ String.concat ", " Dst.Driver.all_names

let dst_report (outcome : Dst.Interp.outcome) =
  print_string outcome.Dst.Interp.report;
  if outcome.Dst.Interp.ok then begin
    print_endline "DST_OK";
    0
  end
  else begin
    List.iter (Printf.printf "VIOLATION %s\n") outcome.Dst.Interp.violations;
    print_endline "DST_FAIL";
    1
  end

let dst_main = function
  | [ "replay"; file ] ->
      let plan = Dst.Repro.load file in
      Printf.printf "replaying %s: driver=%s seed=%d steps=%d note=%S\n" file
        plan.Dst.Plan.driver plan.Dst.Plan.seed
        (List.length plan.Dst.Plan.steps)
        plan.Dst.Plan.note;
      dst_report (Dst.replay plan)
  | "run" :: driver :: seed :: rest ->
      let seed = int_of_string seed in
      let params =
        match rest with
        | steps :: _ ->
            Some
              {
                Dst.Plan.default_params with
                Dst.Plan.n_steps = int_of_string steps;
              }
        | [] -> None
      in
      let plan, outcome = Dst.run_seed ?params ~driver_name:driver ~seed () in
      let code = dst_report outcome in
      if code <> 0 then begin
        let small, st = Dst.shrink_failing plan in
        (try Unix.mkdir "dst" 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let path = Printf.sprintf "dst/repro_%s_seed%d.json" driver seed in
        Dst.Repro.save path
          {
            small with
            Dst.Plan.note = Printf.sprintf "cli run driver=%s seed=%d" driver seed;
          };
        Printf.printf "shrunk %d -> %d steps (%d candidates); repro: %s\n"
          (List.length plan.Dst.Plan.steps)
          (List.length small.Dst.Plan.steps)
          st.Dst.Shrink.candidates path
      end;
      code
  | _ ->
      print_endline dst_usage;
      2

(* ------------------------------------------------------------------ *)
(* `blsm_cli simnet [seed]`: a narrated two-node replication demo over
   the simulated network — loss, duplication, a partition with
   bounded-staleness shedding, heal, reconvergence — ending with the
   link and replication counters and the full net/repl metrics dump. *)

let simnet_main rest =
  let seed = match rest with s :: _ -> int_of_string s | [] -> 42 in
  let net = Simnet.create ~seed () in
  let store () =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 256;
          cfg_durability = Pagestore.Wal.Full;
        }
      Simdisk.Profile.ssd_raid0
  in
  let config = Blsm.Config.default in
  let primary = Blsm.Tree.create ~config (store ()) in
  let server = Blsm.Repl_server.create primary in
  Blsm.Repl_server.attach server (Simnet.endpoint net "primary");
  let f =
    Blsm.Replication.follower ~config ~net ~name:"follower" ~peer:"primary"
      (store ())
  in
  let reg = Obs.Metrics.create () in
  Simnet.register_metrics reg net;
  Blsm.Repl_server.register_metrics reg server;
  Blsm.Replication.register_metrics reg (fun () -> f);
  let sync_str () =
    match Blsm.Replication.sync f with
    | `Applied n -> Printf.sprintf "applied %d records" n
    | `Resynced -> "bootstrapped from a snapshot"
    | `Unreachable -> "primary unreachable"
  in
  Printf.printf "simnet demo, seed %d\n" seed;
  for i = 0 to 49 do
    Blsm.Tree.put primary (Printf.sprintf "key-%03d" i) (Printf.sprintf "v%d" i)
  done;
  Printf.printf "[1] 50 writes on the primary; sync: %s\n" (sync_str ());
  Simnet.schedule_drop net ~src:"follower" ~dst:"primary" ~after:1;
  Simnet.schedule_duplicate net ~src:"primary" ~dst:"follower" ~after:1;
  for i = 0 to 9 do
    Blsm.Tree.apply_delta primary (Printf.sprintf "key-%03d" i) "+delta"
  done;
  Printf.printf "[2] 10 deltas under loss+duplication; sync: %s\n"
    (sync_str ());
  Simnet.partition net "primary" "follower";
  Blsm.Tree.put primary "key-during-partition" "unseen";
  Printf.printf "[3] partitioned; sync: %s\n" (sync_str ());
  Simnet.sleep net (config.Blsm.Config.repl.Blsm.Config.staleness_lease_us + 1_000);
  (match Blsm.Replication.read f "key-000" with
  | `Too_stale -> Printf.printf "[4] lease expired; read shed as too stale\n"
  | `Ok _ -> Printf.printf "[4] read served (unexpected: lease still live)\n");
  Simnet.heal net "primary" "follower";
  Printf.printf "[5] healed; sync: %s\n" (sync_str ());
  let rows t = Blsm.Tree.scan t "\001" 1_000_000 in
  Printf.printf "[6] converged=%b (%d user rows each)\n"
    (rows primary = rows (Blsm.Replication.tree f))
    (List.length (rows primary));
  print_string (Obs.Metrics.dump ~prefix:"net." reg);
  print_string (Obs.Metrics.dump ~prefix:"repl." reg);
  0

let parse_args () =
  let disk = ref Simdisk.Profile.ssd_raid0 in
  let c0_kb = ref 1024 in
  let scheduler = ref Blsm.Config.Spring in
  let rec go = function
    | [] -> ()
    | "--disk" :: "hdd" :: rest ->
        disk := Simdisk.Profile.hdd_raid0;
        go rest
    | "--disk" :: "ssd" :: rest ->
        disk := Simdisk.Profile.ssd_raid0;
        go rest
    | "--c0-kb" :: v :: rest ->
        c0_kb := int_of_string v;
        go rest
    | "--scheduler" :: s :: rest ->
        (scheduler :=
           match s with
           | "naive" -> Blsm.Config.Naive
           | "gear" -> Blsm.Config.Gear
           | "spring" -> Blsm.Config.Spring
           | _ -> failwith ("unknown scheduler " ^ s));
        go rest
    | a :: _ -> failwith ("unknown argument " ^ a)
  in
  go (List.tl (Array.to_list Sys.argv));
  (!disk, !c0_kb * 1024, !scheduler)

let repl () =
  let profile, c0_bytes, scheduler = parse_args () in
  let store =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 2048;
          cfg_durability = Pagestore.Wal.Full;
        }
      profile
  in
  let config =
    {
      Blsm.Config.default with
      Blsm.Config.c0_bytes;
      scheduler;
      snowshovel = scheduler <> Blsm.Config.Gear;
    }
  in
  let tree = ref (Blsm.Tree.create ~config store) in
  let prng = Repro_util.Prng.of_int 99 in
  Printf.printf "bLSM shell — %s, C0 = %d KiB, %s scheduler. Type `help`.\n"
    profile.Simdisk.Profile.name (c0_bytes / 1024)
    (Blsm.Config.scheduler_name scheduler);
  let running = ref true in
  while !running do
    print_string "blsm> ";
    match In_channel.input_line In_channel.stdin with
    | None -> running := false
    | Some line -> (
        let words =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        in
        try
          match words with
          | [] -> ()
          | [ "quit" ] | [ "exit" ] -> running := false
          | [ "help" ] -> print_endline usage
          | [ "put"; k; v ] -> Blsm.Tree.put !tree k v
          | [ "get"; k ] ->
              print_endline
                (match Blsm.Tree.get !tree k with
                | Some v -> v
                | None -> "(not found)")
          | [ "del"; k ] -> Blsm.Tree.delete !tree k
          | [ "delta"; k; d ] -> Blsm.Tree.apply_delta !tree k d
          | [ "ifabsent"; k; v ] ->
              Printf.printf "%s\n"
                (if Blsm.Tree.insert_if_absent !tree k v then "inserted"
                 else "exists, kept")
          | [ "rmw"; k; suffix ] ->
              Blsm.Tree.read_modify_write !tree k (fun v ->
                  Option.value v ~default:"" ^ suffix)
          | [ "scan"; k; n ] ->
              List.iter
                (fun (key, v) -> Printf.printf "  %-24s %s\n" key v)
                (Blsm.Tree.scan !tree k (int_of_string n))
          | [ "fill"; n ] | [ "fill"; n; _ ] ->
              let bytes =
                match words with [ _; _; b ] -> int_of_string b | _ -> 100
              in
              let n = int_of_string n in
              for _ = 1 to n do
                Blsm.Tree.put !tree
                  (Repro_util.Keygen.key_of_id (Repro_util.Prng.int prng 1_000_000))
                  (Repro_util.Keygen.value prng bytes)
              done;
              Printf.printf "inserted %d records\n" n
          | [ "flush" ] ->
              Blsm.Tree.flush !tree;
              print_endline "flushed"
          | [ "crash" ] ->
              tree := Blsm.Tree.crash_and_recover !tree;
              print_endline "crashed and recovered (C0 rebuilt from WAL)"
          | [ "levels" ] ->
              List.iter
                (fun l ->
                  Printf.printf "  %-4s %10d records %12d bytes  ts=%d\n"
                    l.Blsm.Tree.level l.Blsm.Tree.records l.Blsm.Tree.bytes
                    l.Blsm.Tree.level_timestamp)
                (Blsm.Tree.levels !tree)
          (* one code path for human and JSON output: the registry dump *)
          | [ "stats" ] ->
              print_string (Obs.Metrics.dump ~prefix:"tree." (Blsm.Tree.metrics !tree))
          | [ "stats"; "json" ] ->
              print_string
                (Obs.Metrics.dump_json ~prefix:"tree." (Blsm.Tree.metrics !tree))
          | [ "io" ] ->
              print_string (Obs.Metrics.dump ~prefix:"disk." (Blsm.Tree.metrics !tree))
          | [ "io"; "json" ] ->
              print_string
                (Obs.Metrics.dump_json ~prefix:"disk." (Blsm.Tree.metrics !tree))
          | [ "metrics" ] -> print_string (Obs.Metrics.dump (Blsm.Tree.metrics !tree))
          | [ "metrics"; "json" ] ->
              print_string (Obs.Metrics.dump_json (Blsm.Tree.metrics !tree))
          | [ "trace"; "on"; file ] | [ "trace"; "on"; file; "chrome" ] ->
              Obs.Trace.enable_file (Pagestore.Store.trace store)
                ~format:Obs.Trace.Chrome file;
              Printf.printf "tracing to %s (Chrome trace_event JSON)\n" file
          | [ "trace"; "on"; file; "jsonl" ] ->
              Obs.Trace.enable_file (Pagestore.Store.trace store)
                ~format:Obs.Trace.Jsonl file;
              Printf.printf "tracing to %s (JSONL)\n" file
          | [ "trace"; "off" ] ->
              let tr = Pagestore.Store.trace store in
              let n = Obs.Trace.events_emitted tr in
              Obs.Trace.disable tr;
              Printf.printf "tracing stopped (%d events emitted)\n" n
          | cmd :: _ -> Printf.printf "unknown command %S (try `help`)\n" cmd
        with
        | Failure m -> Printf.printf "error: %s\n" m
        | Invalid_argument m -> Printf.printf "error: %s\n" m)
  done

(* ------------------------------------------------------------------ *)
(* `blsm_cli lint [--effects] [--root DIR]`: the project static
   analyzer.  --effects dumps the interprocedural call graph and
   inferred effect signatures as byte-stable JSON (same bytes on every
   run over the same tree). *)

let lint_main rest =
  let config = Lint.Config.default in
  let root = ref "." in
  let effects = ref false in
  let rec parse = function
    | [] -> ()
    | "--effects" :: r ->
        effects := true;
        parse r
    | "--root" :: d :: r ->
        root := d;
        parse r
    | _ ->
        prerr_endline "usage: blsm_cli lint [--effects] [--root DIR]";
        exit 2
  in
  parse rest;
  let dirs = config.Lint.Config.scan_dirs in
  if !effects then begin
    print_string (Lint.Runner.effects_json ~config ~root:!root dirs);
    0
  end
  else begin
    let findings = Lint.Runner.run ~config ~root:!root dirs in
    let baseline =
      let p = Filename.concat !root "lint.baseline" in
      if Sys.file_exists p then Lint.Baseline.load p else []
    in
    let live = Lint.Baseline.filter ~baseline findings in
    List.iter (fun f -> print_endline (Lint.Finding.to_string f)) live;
    if live = [] then begin
      Printf.printf "lint: clean (%d baselined)\n"
        (List.length findings - List.length live);
      0
    end
    else 1
  end

let () =
  match List.tl (Array.to_list Sys.argv) with
  | "dst" :: rest -> exit (dst_main rest)
  | "simnet" :: rest -> exit (simnet_main rest)
  | "lint" :: rest -> exit (lint_main rest)
  | _ -> repl ()
