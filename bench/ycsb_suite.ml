(** The canonical YCSB core workloads A-F (§5.1 uses YCSB throughout),
    run against all three engines on one device class.

    A: 50/50 read/update (Zipfian)      B: 95/5 read/update (Zipfian)
    C: 100% read (Zipfian)              D: 95/5 read/insert (latest)
    E: 95/5 scan/insert (Zipfian, scans of 1-100)
    F: 50/50 read/read-modify-write (Zipfian)

    Expected shapes: bLSM dominates the write-heavy mixes (A, F, D) and
    loses only scan-heavy E's margin. The read-heavy Zipfian mixes (B, C)
    are cache-allocation-sensitive: the paper's bLSM configuration
    dedicates most RAM to C0 (8 GB C0 vs 2 GB page cache) because its
    target workloads are write-heavy, so an engine spending the same RAM
    purely on page cache (LevelDB here) can win pure cached reads.
    InnoDB's 16 KB pages dilute its cache with cold records under poor
    locality — exactly Appendix A.2's argument for small data pages. *)

let workloads =
  [
    ("A (50/50 r/update)", [ (Ycsb.Runner.Read, 0.5); (Ycsb.Runner.Blind_update, 0.5) ], `Zipf);
    ("B (95/5 r/update)", [ (Ycsb.Runner.Read, 0.95); (Ycsb.Runner.Blind_update, 0.05) ], `Zipf);
    ("C (100 read)", [ (Ycsb.Runner.Read, 1.0) ], `Zipf);
    ("D (95/5 r/insert)", [ (Ycsb.Runner.Read, 0.95); (Ycsb.Runner.Insert, 0.05) ], `Latest);
    ("E (95/5 scan/ins)", [ (Ycsb.Runner.Scan 100, 0.95); (Ycsb.Runner.Insert, 0.05) ], `Zipf);
    ("F (50/50 r/rmw)", [ (Ycsb.Runner.Read, 0.5); (Ycsb.Runner.Read_modify_write, 0.5) ], `Zipf);
  ]

let run scale profile =
  (* Explicitly labeled closed-loop: each worker issues the next request
     only when the previous returns, so these numbers are subject to
     coordinated omission — stalls pause the arrival process instead of
     queueing behind it. `bench soak` measures the same store open-loop;
     DESIGN.md §13 discusses the difference. *)
  Scale.section
    (Printf.sprintf "YCSB core workloads A-F (%s, closed-loop)"
       profile.Simdisk.Profile.name);
  let engines =
    [
      ("bLSM", Scale.blsm_engine scale profile);
      ("B-Tree", Scale.btree_engine scale profile);
      ("LevelDB", Scale.leveldb_engine scale profile);
    ]
  in
  let loaded =
    List.map
      (fun (name, e) ->
        let ks, _ = Scale.loaded_engine scale e in
        (name, e, ks))
      engines
  in
  let results =
    List.mapi
      (fun wi (wname, mix, dist_kind) ->
        ( wname,
          List.map
            (fun (_, (e : Kv.Kv_intf.engine), ks) ->
              let dist =
                match dist_kind with
                | `Zipf ->
                    Ycsb.Generator.zipfian ~seed:(50 + wi)
                      ~n:ks.Ycsb.Runner.records ()
                | `Latest -> Ycsb.Generator.latest ~seed:(50 + wi)
              in
              (* workload E is expensive: fewer ops *)
              let ops =
                match wname.[0] with
                | 'E' -> max 200 (scale.Scale.ops / 8)
                | _ -> scale.Scale.ops
              in
              let r =
                Ycsb.Runner.run e ks
                  ~label:(Printf.sprintf "%s closed-loop" wname)
                  ~mix ~ops ~dist ~seed:(70 + wi) ()
              in
              e.Kv.Kv_intf.maintenance ();
              r)
            loaded ))
      workloads
  in
  Printf.printf "closed-loop throughput (ops/sec)\n";
  Printf.printf "%-20s" "workload";
  List.iter (fun (n, _, _) -> Printf.printf " %12s" n) loaded;
  print_newline ();
  List.iter
    (fun (wname, rs) ->
      Printf.printf "%-20s" wname;
      List.iter
        (fun r -> Printf.printf " %12.0f" r.Ycsb.Runner.ops_per_sec)
        rs;
      print_newline ())
    results;
  (* Per-op latencies ride the shared Repro_util.Histogram the runner
     fills — the same type every window/rollup in lib/obs consumes. *)
  Printf.printf
    "\nclosed-loop service latency, p50/p99/p99.9 us (coordinated omission \
     applies: stalls pause arrivals here; see `bench soak` for the \
     open-loop view)\n";
  Printf.printf "%-20s" "workload";
  List.iter (fun (n, _, _) -> Printf.printf " %18s" n) loaded;
  print_newline ();
  List.iter
    (fun (wname, rs) ->
      Printf.printf "%-20s" wname;
      List.iter
        (fun r ->
          let h = r.Ycsb.Runner.latency in
          Printf.printf " %18s"
            (Printf.sprintf "%d/%d/%d"
               (Repro_util.Histogram.percentile h 50.0)
               (Repro_util.Histogram.percentile h 99.0)
               (Repro_util.Histogram.percentile h 99.9)))
        rs;
      print_newline ())
    results
