(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (see DESIGN.md §3 for the experiment index).

    Usage:
    {v
      dune exec bench/main.exe -- all            # everything, small scale
      dune exec bench/main.exe -- fig7 --records 100000 --disk hdd
      dune exec bench/main.exe -- table1 fig8 scans
      dune exec bench/main.exe -- micro          # Bechamel kernels
    v} *)

let profile_of_name = function
  | "hdd" -> Simdisk.Profile.hdd_raid0
  | "ssd" -> Simdisk.Profile.ssd_raid0
  | s -> invalid_arg (Printf.sprintf "unknown disk %S (hdd|ssd)" s)

type opts = {
  scale : Scale.t;
  disk : string option;  (** None = experiment default *)
}

let experiments : (string * string * (opts -> unit)) list =
  [
    ( "table1",
      "Table 1: seeks per operation + insert latency tails",
      fun o ->
        Table1.run o.scale
          (profile_of_name (Option.value o.disk ~default:"hdd")) );
    ( "fig2",
      "Figure 2: read amplification, fractional cascading vs Bloom",
      fun o ->
        Fig2.run o.scale (profile_of_name (Option.value o.disk ~default:"ssd")) );
    ( "fig7",
      "Figure 7: random-insert timeseries, bLSM vs LevelDB",
      fun o ->
        Fig7.run o.scale (profile_of_name (Option.value o.disk ~default:"hdd")) );
    ( "fig8",
      "Figure 8: throughput vs write ratio (both device classes)",
      fun o ->
        match o.disk with
        | Some d -> Fig8.run o.scale (profile_of_name d)
        | None ->
            Fig8.run o.scale Simdisk.Profile.hdd_raid0;
            Fig8.run o.scale Simdisk.Profile.ssd_raid0 );
    ( "fig9",
      "Figure 9: workload shift to 80/20 Zipfian serving",
      fun o ->
        Fig9.run o.scale (profile_of_name (Option.value o.disk ~default:"ssd")) );
    ( "load",
      "Section 5.2: bulk-load semantics comparison",
      fun o ->
        Load52.run o.scale (profile_of_name (Option.value o.disk ~default:"hdd")) );
    ( "scans",
      "Section 5.6: short and long scans after fragmentation",
      fun o ->
        Scans56.run o.scale (profile_of_name (Option.value o.disk ~default:"hdd")) );
    ( "ycsb",
      "YCSB core workloads A-F across all engines",
      fun o ->
        Ycsb_suite.run o.scale
          (profile_of_name (Option.value o.disk ~default:"ssd")) );
    ( "trace",
      "Figures 5-6: scheduler mechanics timeline (gear/spring/naive)",
      fun o ->
        Trace.run o.scale
          (profile_of_name (Option.value o.disk ~default:"hdd")) );
    ( "metrics",
      "Section 2.1: read/write amplification and read fanout",
      fun o ->
        Metrics.run o.scale
          (profile_of_name (Option.value o.disk ~default:"hdd")) );
    ( "table2",
      "Table 2: index-cache RAM per device (analytic)",
      fun _ -> Table2.run () );
    ( "ablation",
      "Ablations: scheduler, Bloom, snowshovel, early termination, skew",
      fun o ->
        Ablation.run o.scale
          (profile_of_name (Option.value o.disk ~default:"hdd")) );
    ( "dst",
      "DST soak: seeded workload/fault simulation across all engines",
      fun o -> Dst_soak.run o.scale );
    ("micro", "Bechamel micro-benchmarks", fun _ -> Micro.run ());
    ( "perf",
      "Perf regression harness: CPU kernels -> BENCH_PR2.json",
      fun o -> Perf.run o.scale );
    ( "soak",
      "Stability observatory: open-loop soak -> BENCH_PR8.json",
      fun o -> Soak.run o.scale );
    ( "grid",
      "Compaction design space: policy x workload x ratio -> BENCH_PR9.json",
      fun o -> Grid.run o.scale );
  ]

let usage () =
  print_endline "bLSM reproduction benchmark harness.\n";
  print_endline "  dune exec bench/main.exe -- [EXPERIMENT...] [OPTIONS]\n";
  print_endline "Experiments:";
  Printf.printf "  %-10s %s\n" "all" "run every experiment (default)";
  List.iter (fun (n, doc, _) -> Printf.printf "  %-10s %s\n" n doc) experiments;
  print_endline "\nOptions:";
  print_endline "  --records N      records to load per store (default 40000)";
  print_endline "  --ops N          operations per measured phase (default 8000)";
  print_endline "  --value-bytes N  value size (default 1000, as in the paper)";
  print_endline "  --disk hdd|ssd   override the experiment's device class";
  print_endline "  --quick          quarter-scale run";
  print_endline "  --seed N         PRNG seed (default 42)"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref Scale.default in
  let disk = ref None in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--records" :: v :: rest ->
        scale := { !scale with Scale.records = int_of_string v };
        parse rest
    | "--ops" :: v :: rest ->
        scale := { !scale with Scale.ops = int_of_string v };
        parse rest
    | "--value-bytes" :: v :: rest ->
        scale := { !scale with Scale.value_bytes = int_of_string v };
        parse rest
    | "--seed" :: v :: rest ->
        scale := { !scale with Scale.seed = int_of_string v };
        parse rest
    | "--disk" :: v :: rest ->
        disk := Some v;
        parse rest
    | "--quick" :: rest ->
        scale :=
          {
            !scale with
            Scale.records = !scale.Scale.records / 4;
            ops = !scale.Scale.ops / 4;
          };
        parse rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | name :: rest ->
        selected := name :: !selected;
        parse rest
  in
  parse args;
  let selected =
    match List.rev !selected with
    | [] | [ "all" ] -> List.map (fun (n, _, _) -> n) experiments
    | l -> l
  in
  let opts = { scale = !scale; disk = !disk } in
  Printf.printf
    "bLSM reproduction benchmarks: %d records x %dB values, %d ops/phase, seed %d\n"
    opts.scale.Scale.records opts.scale.Scale.value_bytes opts.scale.Scale.ops
    opts.scale.Scale.seed;
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, _, f) ->
          (* wall-clock progress report only; never enters results *)
          let t0 = (Unix.gettimeofday [@lint.allow "D001"]) () in
          f opts;
          Printf.printf "\n(%s completed in %.1fs wall clock)\n" name
            ((Unix.gettimeofday [@lint.allow "D001"]) () -. t0)
      | None ->
          Printf.eprintf "unknown experiment %S\n" name;
          usage ();
          exit 1)
    selected
