(** Figures 5 & 6 — the gear and spring-and-gear mechanics, as a timeline.

    The paper's Figures 5 and 6 are diagrams of the clock analogy: gears
    keep each merge's progress hand aligned with the upstream component's
    fill, and the spring decouples the application from merge timing with
    a watermark band on C0. This experiment makes the mechanism visible as
    data: a saturated insert load sampled every few hundred operations,
    printing C0 fill, merge1 inprogress, outprogress1 and merge2
    inprogress side by side.

    Expected shapes:
    - gear: merge1's inprogress tracks C0's fill almost 1:1 (the meshed
      gears), resetting together at each hand-off;
    - spring: C0 fill oscillates inside the [low, high] band while the
      merge hands sweep smoothly — the spring absorbing the coupling;
    - naive: C0 fill saws from 0 to 1 with a full-drain stall at each
      peak. *)

let run_one scale profile ~scheduler ~snowshovel ~label ~trace_file =
  Printf.printf "\n[%s]\n" label;
  Printf.printf "%8s %8s %10s %12s %10s %10s\n" "ops" "C0-fill" "m1-inprog"
    "outprogress1" "m2-inprog" "stall(ms)";
  let tree =
    Scale.blsm
      ~config_tweak:(fun c ->
        { c with Blsm.Config.scheduler; snowshovel })
      scale profile
  in
  (* Every pacing decision, merge quantum, and per-op span goes to the
     trace file, so the figure can be regenerated from the file alone
     (see DESIGN.md "Observability") instead of the inline samples. *)
  Obs.Trace.enable_file
    (Pagestore.Store.trace (Blsm.Tree.store tree))
    ~format:Obs.Trace.Chrome trace_file;
  let disk = Blsm.Tree.disk tree in
  let prng = Repro_util.Prng.of_int scale.Scale.seed in
  let n = scale.Scale.records in
  let sample_every = max 1 (n / 28) in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let t0 = Simdisk.Disk.now_us disk in
    Blsm.Tree.put tree
      (Repro_util.Keygen.key_of_id i)
      (Repro_util.Keygen.value prng scale.Scale.value_bytes);
    worst := Float.max !worst (Simdisk.Disk.now_us disk -. t0);
    if i mod sample_every = 0 then begin
      Printf.printf "%8d %8.2f %10.2f %12.2f %10.2f %10.2f\n" i
        (Blsm.Tree.c0_fill tree)
        (Blsm.Tree.merge1_inprogress tree)
        (Blsm.Tree.outprogress1 tree)
        (Blsm.Tree.merge2_inprogress tree)
        (!worst /. 1000.);
      worst := 0.0
    end
  done;
  let tr = Pagestore.Store.trace (Blsm.Tree.store tree) in
  let events = Obs.Trace.events_emitted tr in
  Obs.Trace.disable tr;
  Printf.printf "  trace: %d events -> %s\n" events trace_file

let run scale profile =
  Scale.section
    (Printf.sprintf
       "Figures 5-6: scheduler mechanics timeline (%s, saturated inserts)"
       profile.Simdisk.Profile.name);
  run_one scale profile ~scheduler:Blsm.Config.Gear ~snowshovel:false
    ~label:"gear scheduler (Figure 5): merge hands mesh with C0 fill"
    ~trace_file:"fig56_gear.trace.json";
  run_one scale profile ~scheduler:Blsm.Config.Spring ~snowshovel:true
    ~label:"spring-and-gear (Figure 6): C0 rides the watermark band"
    ~trace_file:"fig56_spring.trace.json";
  run_one scale profile ~scheduler:Blsm.Config.Naive ~snowshovel:true
    ~label:"naive (no pacing): sawtooth fill, full-drain stalls"
    ~trace_file:"fig56_naive.trace.json"
