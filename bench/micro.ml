(** Bechamel micro-benchmarks: the CPU-side kernels each experiment leans
    on, one [Test.make] per table/figure ingredient. Reported as ns/run
    via OLS against the monotonic clock. *)

open Bechamel
open Toolkit

let mk_store () =
  Pagestore.Store.create
    ~config:
      { Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = 1024;
        cfg_durability = Pagestore.Wal.None_ }
    Simdisk.Profile.ssd_raid0

let test_skiplist =
  (* Prebuild the list: the kernel measures one set + one find against a
     populated structure (the C0 steady state), not 100 inserts into a
     fresh list plus allocator traffic, which is what an earlier version
     of this benchmark timed. *)
  let sl = Memtable.Skiplist.create () in
  let () =
    for i = 0 to 9_999 do
      Memtable.Skiplist.set sl (Printf.sprintf "key%06d" i) i
    done
  in
  let i = ref 0 in
  Test.make ~name:"skiplist.set+find (table1 C0 path)"
    (Staged.stage (fun () ->
         incr i;
         let k = Printf.sprintf "key%06d" (!i * 7919 mod 10_000) in
         Memtable.Skiplist.set sl k !i;
         ignore (Memtable.Skiplist.find sl k)))

let test_memtable_write =
  let mem = Memtable.create ~resolver:Kv.Entry.append_resolver () in
  let i = ref 0 in
  Test.make ~name:"memtable.write (fig7 insert path)"
    (Staged.stage (fun () ->
         incr i;
         Memtable.write mem ~lsn:!i
           (Repro_util.Keygen.key_of_id (!i mod 10_000))
           (Kv.Entry.Base "value")))

let test_bloom =
  let b = Bloom.create ~expected_items:100_000 () in
  let i = ref 0 in
  Test.make ~name:"bloom.add+mem (table1 lookup path)"
    (Staged.stage (fun () ->
         incr i;
         let k = Repro_util.Keygen.key_of_id !i in
         Bloom.add b k;
         ignore (Bloom.mem b k)))

let test_crc =
  let payload = String.make 4096 'x' in
  Test.make ~name:"crc32c.4KiB (wal/page integrity)"
    (Staged.stage (fun () -> ignore (Repro_util.Crc32c.string payload)))

let test_entry_codec =
  let e = Kv.Entry.Base (String.make 1000 'v') in
  Test.make ~name:"entry.encode+decode (sstable record)"
    (Staged.stage (fun () ->
         let buf = Buffer.create 1100 in
         Kv.Entry.encode buf e;
         ignore (Kv.Entry.decode (Buffer.contents buf) 0)))

let test_sstable_get =
  let store = mk_store () in
  let b = Sstable.Builder.create ~extent_pages:256 store in
  for i = 0 to 9_999 do
    Sstable.Builder.add b
      (Printf.sprintf "key%08d" i)
      (Kv.Entry.Base (String.make 100 'v'))
  done;
  let footer = Sstable.Builder.finish b ~timestamp:1 in
  let sst =
    Sstable.Reader.open_in_ram store footer ~index:(Sstable.Builder.index_blob b)
  in
  let i = ref 0 in
  Test.make ~name:"sstable.get (fig8 read path)"
    (Staged.stage (fun () ->
         incr i;
         ignore (Sstable.Reader.get sst (Printf.sprintf "key%08d" (!i * 7919 mod 10_000)))))

let test_zipfian =
  let g = Ycsb.Generator.zipfian ~seed:1 ~n:1_000_000 () in
  Test.make ~name:"ycsb.zipfian draw (fig9 workload)"
    (Staged.stage (fun () -> ignore (Ycsb.Generator.next g ~record_count:1_000_000)))

let test_histogram =
  let h = Repro_util.Histogram.create () in
  let i = ref 0 in
  Test.make ~name:"histogram.add (latency capture)"
    (Staged.stage (fun () ->
         incr i;
         Repro_util.Histogram.add h (!i * 13 mod 100_000)))

let test_blsm_put =
  let store = mk_store () in
  let config =
    { Blsm.Config.default with Blsm.Config.c0_bytes = 4 * 1024 * 1024 }
  in
  let tree = Blsm.Tree.create ~config store in
  let i = ref 0 in
  Test.make ~name:"blsm.put end-to-end (fig7/fig8 write)"
    (Staged.stage (fun () ->
         incr i;
         Blsm.Tree.put tree (Repro_util.Keygen.key_of_id !i) (String.make 100 'v')))

let tests =
  [
    test_skiplist;
    test_memtable_write;
    test_bloom;
    test_crc;
    test_entry_codec;
    test_sstable_get;
    test_zipfian;
    test_histogram;
    test_blsm_put;
  ]

(** [collect ()] runs every kernel and returns [(name, ns/run)] pairs —
    the perf harness folds these into its JSON trajectory. A kernel whose
    OLS fit fails reports [nan]. *)
let collect ?(quota = 0.5) () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  List.concat_map
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      (* bechamel keys its results table by test name; sort so the hash
         order cannot leak into the report. *)
      (Hashtbl.fold [@lint.allow "D002"])
        (fun name ols_result acc ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> est
            | _ -> nan
          in
          (name, est) :: acc)
        results []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))
    tests

let run () =
  Scale.section "Bechamel micro-benchmarks (ns/run, OLS vs monotonic clock)";
  List.iter
    (fun (name, est) ->
      if Float.is_nan est then Printf.printf "%-44s %12s\n" name "n/a"
      else Printf.printf "%-44s %12.1f ns/run\n" name est)
    (collect ())
