(** Stability observatory (`bench soak`): open-loop multi-epoch soak
    with windowed tail-latency timeseries and stall-episode attribution.

    The paper's headline claim is bounded write latency, but a
    closed-loop driver cannot see it honestly: every stall pauses the
    arrival process, so the tail the claim is about vanishes from the
    report (coordinated omission). This driver measures the same store
    both ways:

    - a *closed-loop* calibration phase (service-time latency, explicit
      "closed-loop" label) that also fixes the open-loop arrival rate as
      a fraction of the measured capacity;
    - four *open-loop* epochs (fill, overwrite, tombstone flood,
      latest-skew — the Luo & Carey stress patterns) where latency is
      measured from intended arrival time, stalls surface as queue
      growth, and per-window p50/p99/p99.9 series come from
      {!Obs.Windows};
    - a stall-episode stream ({!Obs.Episodes}) fed by the tree's
      {!Blsm.Tree.on_stall} observer, whose merge1/merge2/hard sums must
      tile each episode exactly.

    The workload is pinned (record count, value size, C0 size, rates
    derived from calibration) so its gates are exact regression checks,
    not statistics; `--seed` is honored and two same-seed passes must
    produce byte-identical reports. Writes [BENCH_PR8.json] plus
    [soak_windows.csv], [soak_episodes.csv] and [soak_stalls.trace.json]
    (Chrome counter tracks). Exits 1 when a gate trips, so the
    [@soak-smoke] alias is a regression gate in the [@perf-smoke]
    style. *)

module H = Repro_util.Histogram

(* Pinned workload: small enough to run in seconds, large enough that
   the spring scheduler stalls and the open loop queues behind them. *)
let preload_records = 4_000
let value_bytes = 400
let epoch_ops = 1_500
let c0_bytes = 128 * 1024
let queue_bound = 2_000
let episode_gap_us = 100.0

(* Regression limits, recorded 2026-08-07 on the PR-8 seed-42 soak
   (exact simulated-clock quantities; headroom covers seed drift, not
   noise — there is none). *)
let gate_open_p999_us = 2_000.0 (* measured 944 us, overwrite epoch *)
let gate_max_queue = 400.0 (* measured peak depth 251, latest-skew *)
let gate_min_open_over_closed = 1.2 (* measured 5.76x *)

type gate = { g_name : string; g_value : float; g_limit : float; g_ok : bool }

let gate_max name value limit =
  { g_name = name; g_value = value; g_limit = limit; g_ok = value <= limit }

let gate_min name value limit =
  { g_name = name; g_value = value; g_limit = limit; g_ok = value >= limit }

type epoch_result = {
  er_name : string;
  er_open : Ycsb.Open_loop.result;
}

type soak_result = {
  sr_closed : Ycsb.Runner.result;
  sr_rate : float;
  sr_window_us : int;
  sr_epochs : epoch_result list;
  sr_fleet : Obs.Windows.t;
  sr_episodes : Obs.Episodes.episode list;
  sr_fed_total_us : float;
  sr_fed_samples : int;
  sr_metrics_excerpt : string;
  sr_counter_trace : string;
}

let mk_tree ~seed =
  let store =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 1024;
          cfg_durability = Pagestore.Wal.Full;
        }
      Simdisk.Profile.ssd_raid0
  in
  let config =
    {
      Blsm.Config.default with
      Blsm.Config.c0_bytes;
      scheduler = Blsm.Config.Spring;
      snowshovel = true;
      seed;
    }
  in
  Blsm.Tree.create ~config store

let overwrite_mix =
  [ (Ycsb.Runner.Blind_update, 0.9); (Ycsb.Runner.Read, 0.1) ]

(* One full soak pass. Everything on the simulated clock; same seed,
   same report bytes. *)
let run_once ~seed () =
  let tree = mk_tree ~seed in
  let engine = Blsm.Tree.engine tree in
  let disk = Blsm.Tree.disk tree in
  let episodes = Obs.Episodes.create ~gap_us:episode_gap_us () in
  Blsm.Tree.on_stall tree (fun sb ->
      Obs.Episodes.feed episodes
        ~time_us:(Simdisk.Disk.now_us disk)
        ~merge1_us:sb.Blsm.Tree.sb_merge1_us
        ~merge2_us:sb.Blsm.Tree.sb_merge2_us
        ~hard_us:sb.Blsm.Tree.sb_hard_us);
  let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes in
  ignore (Ycsb.Runner.load engine ks ~n:preload_records ~seed ());
  (* Closed-loop calibration: service-time latency (the coordinated-
     omission-blind number) and the capacity the open loop is paced
     against. *)
  let closed =
    Ycsb.Runner.run engine ks ~label:"closed-loop overwrite"
      ~mix:overwrite_mix ~ops:epoch_ops
      ~dist:(Ycsb.Generator.zipfian ~seed:(seed + 10) ~n:ks.Ycsb.Runner.records ())
      ~seed:(seed + 20) ()
  in
  let rate = 0.75 *. closed.Ycsb.Runner.ops_per_sec in
  (* Window width: ~12 windows per epoch at the offered rate, floored so
     a window always spans many operations. *)
  let window_us =
    max 1_000
      (int_of_float (float_of_int epoch_ops /. rate *. 1e6 /. 12.0))
  in
  let fixed = Ycsb.Open_loop.Fixed_rate { ops_per_sec = rate } in
  let bursty =
    Ycsb.Open_loop.Bursty
      {
        base_ops_per_sec = 0.5 *. rate;
        burst_ops_per_sec = 2.5 *. rate;
        period_us = 4.0 *. float_of_int window_us;
        burst_fraction = 0.25;
      }
  in
  let epochs =
    [
      ("fill", [ (Ycsb.Runner.Insert, 1.0) ], `Uniform, fixed);
      ("overwrite", overwrite_mix, `Zipf, fixed);
      ( "tombstone-flood",
        [ (Ycsb.Runner.Delete, 0.6); (Ycsb.Runner.Insert, 0.4) ],
        `Uniform, bursty );
      ( "latest-skew",
        [ (Ycsb.Runner.Insert, 0.5); (Ycsb.Runner.Blind_update, 0.3);
          (Ycsb.Runner.Read, 0.2) ],
        `Latest, bursty );
    ]
  in
  let results =
    List.mapi
      (fun i (name, mix, dist_kind, schedule) ->
        let dist =
          match dist_kind with
          | `Uniform -> Ycsb.Generator.uniform ~seed:(seed + 30 + i)
          | `Zipf ->
              Ycsb.Generator.zipfian ~seed:(seed + 30 + i)
                ~n:ks.Ycsb.Runner.records ()
          | `Latest -> Ycsb.Generator.latest ~seed:(seed + 30 + i)
        in
        let r =
          Ycsb.Open_loop.run engine ks ~label:name ~mix ~ops:epoch_ops ~dist
            ~schedule ~queue_bound ~window_us ~jitter:0.1
            ~seed:(seed + 40 + i) ()
        in
        { er_name = name; er_open = r })
      epochs
  in
  (* Fleet rollup: merge every epoch's windows — the cross-shard path. *)
  let fleet = Obs.Windows.create ~width_us:window_us in
  List.iter
    (fun er -> Obs.Windows.merge ~into:fleet er.er_open.Ycsb.Open_loop.ol_windows)
    results;
  (* Register the series in the tree's metrics registry and dump the
     soak.* namespace, proving the observatory shows up in `metrics`. *)
  let reg = Blsm.Tree.metrics tree in
  Obs.Windows.register fleet reg ~name:"soak.lat";
  let metrics_excerpt = Obs.Metrics.dump ~prefix:"soak." reg in
  (* Chrome counter tracks for the stall episodes. *)
  let tr = Obs.Trace.create () in
  let finish = Obs.Trace.enable_buffer tr ~format:Obs.Trace.Chrome in
  Obs.Episodes.emit_counters tr episodes;
  let counter_trace = finish () in
  {
    sr_closed = closed;
    sr_rate = rate;
    sr_window_us = window_us;
    sr_epochs = results;
    sr_fleet = fleet;
    sr_episodes = Obs.Episodes.episodes episodes;
    sr_fed_total_us = Obs.Episodes.fed_total_us episodes;
    sr_fed_samples = Obs.Episodes.fed_samples episodes;
    sr_metrics_excerpt = metrics_excerpt;
    sr_counter_trace = counter_trace;
  }

(* ------------------------------------------------------------------ *)
(* Report *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf " "
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let hist_json h =
  Printf.sprintf
    "{\"count\": %d, \"mean_us\": %.1f, \"p50_us\": %d, \"p99_us\": %d, \
     \"p999_us\": %d, \"max_us\": %d}"
    (H.count h) (H.mean h) (H.percentile h 50.0) (H.percentile h 99.0)
    (H.percentile h 99.9) (H.max_value h)

let schedule_name = function
  | Ycsb.Open_loop.Fixed_rate _ -> "fixed"
  | Ycsb.Open_loop.Bursty _ -> "bursty"

let report ~seed (r : soak_result) ~gates =
  let buf = Buffer.create 16_384 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"pr\": 8,\n";
  out "  \"harness\": \"bench soak\",\n";
  out "  \"seed\": %d,\n" seed;
  out
    "  \"config\": {\"records\": %d, \"value_bytes\": %d, \"epoch_ops\": %d, \
     \"c0_bytes\": %d, \"queue_bound\": %d, \"window_us\": %d, \
     \"episode_gap_us\": %.1f, \"open_loop_rate_ops_per_sec\": %.1f},\n"
    preload_records value_bytes epoch_ops c0_bytes queue_bound r.sr_window_us
    episode_gap_us r.sr_rate;
  let c = r.sr_closed in
  out
    "  \"closed_loop\": {\"label\": \"%s\", \"ops\": %d, \"ops_per_sec\": \
     %.1f, \"latency\": %s},\n"
    (json_escape c.Ycsb.Runner.label)
    c.Ycsb.Runner.ops c.Ycsb.Runner.ops_per_sec
    (hist_json c.Ycsb.Runner.latency);
  out "  \"epochs\": [\n";
  let n = List.length r.sr_epochs in
  List.iteri
    (fun i er ->
      let o = er.er_open in
      out
        "    {\"name\": \"%s\", \"schedule\": \"%s\", \"offered\": %d, \
         \"completed\": %d, \"shed\": %d, \"ops_per_sec\": %.1f, \
         \"max_queue\": %d,\n"
        er.er_name
        (schedule_name o.Ycsb.Open_loop.ol_schedule)
        o.Ycsb.Open_loop.ol_offered o.Ycsb.Open_loop.ol_completed
        o.Ycsb.Open_loop.ol_shed o.Ycsb.Open_loop.ol_ops_per_sec
        o.Ycsb.Open_loop.ol_max_queue;
      out "     \"arrival_latency\": %s,\n"
        (hist_json o.Ycsb.Open_loop.ol_latency);
      out "     \"service_latency\": %s,\n"
        (hist_json o.Ycsb.Open_loop.ol_service);
      let tv = Obs.Windows.throughput o.Ycsb.Open_loop.ol_windows in
      out
        "     \"throughput\": {\"windows\": %d, \"mean_ops_per_sec\": %.1f, \
         \"stddev_ops_per_sec\": %.1f, \"cv\": %.3f},\n"
        tv.Obs.Windows.tv_windows tv.Obs.Windows.tv_mean_ops_per_sec
        tv.Obs.Windows.tv_stddev_ops_per_sec tv.Obs.Windows.tv_cv;
      out "     \"queue_depth\": [%s],\n"
        (String.concat ", "
           (List.map
              (fun (t_sec, d) -> Printf.sprintf "[%.3f, %d]" t_sec d)
              o.Ycsb.Open_loop.ol_depth_rows));
      out "     \"windows\": %s}%s\n"
        (Obs.Windows.rows_json o.Ycsb.Open_loop.ol_windows)
        (if i = n - 1 then "" else ",");
      ())
    r.sr_epochs;
  out "  ],\n";
  out "  \"fleet_windows\": %s,\n" (Obs.Windows.rows_json r.sr_fleet);
  out "  \"episodes\": %s,\n" (Obs.Episodes.to_json r.sr_episodes);
  let ep_sum =
    List.fold_left
      (fun a e -> a +. e.Obs.Episodes.ep_total_us)
      0.0 r.sr_episodes
  in
  let worst_tile =
    List.fold_left
      (fun a e ->
        Float.max a
          (Float.abs
             (e.Obs.Episodes.ep_merge1_us +. e.Obs.Episodes.ep_merge2_us
              +. e.Obs.Episodes.ep_hard_us -. e.Obs.Episodes.ep_total_us)))
      0.0 r.sr_episodes
  in
  out
    "  \"episode_tiling\": {\"episodes\": %d, \"stalled_writes\": %d, \
     \"episodes_total_us\": %.3f, \"fed_total_us\": %.3f, \
     \"worst_episode_err_us\": %.6f},\n"
    (List.length r.sr_episodes)
    r.sr_fed_samples ep_sum r.sr_fed_total_us worst_tile;
  let closed_p999 = float_of_int (H.percentile c.Ycsb.Runner.latency 99.9) in
  let open_overwrite =
    List.find (fun er -> er.er_name = "overwrite") r.sr_epochs
  in
  let open_p999 =
    float_of_int
      (H.percentile open_overwrite.er_open.Ycsb.Open_loop.ol_latency 99.9)
  in
  out
    "  \"closed_vs_open\": {\"workload\": \"overwrite\", \"closed_p999_us\": \
     %.1f, \"open_p999_us\": %.1f, \"open_over_closed\": %.2f},\n"
    closed_p999 open_p999
    (open_p999 /. Float.max 1.0 closed_p999);
  out "  \"metrics_excerpt\": \"%s\",\n" (json_escape r.sr_metrics_excerpt);
  out "  \"gates\": [\n";
  let ng = List.length gates in
  List.iteri
    (fun i g ->
      out
        "    {\"name\": \"%s\", \"value\": %.3f, \"limit\": %.3f, \"ok\": \
         %b}%s\n"
        (json_escape g.g_name) g.g_value g.g_limit g.g_ok
        (if i = ng - 1 then "" else ","))
    gates;
  out "  ]\n";
  out "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let run ?(out = "BENCH_PR8.json") (s : Scale.t) =
  Scale.section
    "Stability observatory: open-loop soak (writes BENCH_PR8.json)";
  let seed = s.Scale.seed in
  let r = run_once ~seed () in
  (* Gates (computed before the report so the report can include them). *)
  let closed_p999 =
    float_of_int (H.percentile r.sr_closed.Ycsb.Runner.latency 99.9)
  in
  let open_overwrite =
    List.find (fun er -> er.er_name = "overwrite") r.sr_epochs
  in
  let open_p999 =
    float_of_int
      (H.percentile open_overwrite.er_open.Ycsb.Open_loop.ol_latency 99.9)
  in
  let worst_queue =
    List.fold_left
      (fun a er -> max a er.er_open.Ycsb.Open_loop.ol_max_queue)
      0 r.sr_epochs
  in
  let min_epoch_windows =
    List.fold_left
      (fun a er ->
        min a
          (List.length (Obs.Windows.rows er.er_open.Ycsb.Open_loop.ol_windows)))
      max_int r.sr_epochs
  in
  let worst_tile =
    List.fold_left
      (fun a e ->
        Float.max a
          (Float.abs
             (e.Obs.Episodes.ep_merge1_us +. e.Obs.Episodes.ep_merge2_us
              +. e.Obs.Episodes.ep_hard_us -. e.Obs.Episodes.ep_total_us)))
      0.0 r.sr_episodes
  in
  let ep_sum =
    List.fold_left
      (fun a e -> a +. e.Obs.Episodes.ep_total_us)
      0.0 r.sr_episodes
  in
  let gates =
    [
      gate_min "soak.epoch_windows.nonempty" (float_of_int min_epoch_windows)
        3.0;
      gate_min "soak.episodes.count" (float_of_int (List.length r.sr_episodes))
        1.0;
      gate_max "soak.episode.attribution_tiling_err_us" worst_tile 0.5;
      gate_max "soak.episode.sum_vs_fed_err_us"
        (Float.abs (ep_sum -. r.sr_fed_total_us))
        1.0;
      gate_max "soak.open.overwrite.p999_us" open_p999 gate_open_p999_us;
      gate_max "soak.open.max_queue_depth" (float_of_int worst_queue)
        gate_max_queue;
      gate_min "soak.open_over_closed.p999"
        (open_p999 /. Float.max 1.0 closed_p999)
        gate_min_open_over_closed;
    ]
  in
  let doc = report ~seed r ~gates in
  (* Determinism: a second same-seed pass must render the same bytes. *)
  let r2 = run_once ~seed () in
  let doc2 = report ~seed r2 ~gates in
  let identical = String.equal doc doc2 in
  let gates =
    gates
    @ [ gate_min "soak.same_seed_byte_identical"
          (if identical then 1.0 else 0.0)
          1.0 ]
  in
  let doc = report ~seed r ~gates in
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  write out doc;
  write "soak_windows.csv" (Obs.Windows.rows_csv r.sr_fleet);
  write "soak_episodes.csv" (Obs.Episodes.to_csv r.sr_episodes);
  write "soak_stalls.trace.json" r.sr_counter_trace;
  (* Human summary *)
  Printf.printf "\n%s\n" (Fmt.str "%a" Ycsb.Runner.pp_result r.sr_closed);
  List.iter
    (fun er ->
      Printf.printf "%s\n" (Fmt.str "%a" Ycsb.Open_loop.pp_result er.er_open))
    r.sr_epochs;
  Printf.printf
    "episodes: %d (%d stalled writes, %.1f ms attributed; worst tiling err \
     %.6f us)\n"
    (List.length r.sr_episodes)
    r.sr_fed_samples (r.sr_fed_total_us /. 1000.0) worst_tile;
  Printf.printf "closed p99.9 %.0f us vs open p99.9 %.0f us (x%.2f)\n"
    closed_p999 open_p999
    (open_p999 /. Float.max 1.0 closed_p999);
  let failed = List.filter (fun g -> not g.g_ok) gates in
  List.iter
    (fun g ->
      Printf.printf "GATE FAILED: %s = %.3f vs limit %.3f\n" g.g_name g.g_value
        g.g_limit)
    failed;
  if failed <> [] then exit 1
