(* DST soak as a bench experiment: longer plans and more seeds than the
   @dst-smoke gate, with per-driver timing so harness throughput (plans
   per second) is visible alongside the correctness sweep. Scale knobs
   map naturally: --ops sets steps per plan, --seed offsets the seed
   block, --quick quarters everything like any other experiment. *)

let drivers =
  [ "blsm"; "blsm-gear"; "blsm-naive"; "partitioned"; "btree"; "leveldb";
    "replicated" ]

let run (scale : Scale.t) =
  let steps = max 50 (min 600 (scale.Scale.ops / 16)) in
  let seeds = max 3 (min 40 (scale.Scale.records / 8000)) in
  let params =
    { Dst.Plan.default_params with Dst.Plan.n_steps = steps }
  in
  Printf.printf
    "\n== DST soak: %d drivers x %d seeds, %d steps per plan ==\n%!"
    (List.length drivers) seeds steps;
  let total_violations = ref 0 in
  List.iter
    (fun driver ->
      (* wall-clock throughput report only; plans/results are seeded *)
      let t0 = (Unix.gettimeofday [@lint.allow "D001"]) () in
      let crashes = ref 0 and rot = ref 0 and bad = ref 0 in
      for s = 1 to seeds do
        let seed = scale.Scale.seed + (s * 101) in
        let plan, outcome =
          Dst.run_seed ~params ~driver_name:driver ~seed ()
        in
        crashes := !crashes + outcome.Dst.Interp.crashes;
        if outcome.Dst.Interp.rot then incr rot;
        if not outcome.Dst.Interp.ok then begin
          incr bad;
          total_violations :=
            !total_violations + List.length outcome.Dst.Interp.violations;
          Printf.printf "  FAIL %s seed=%d (%d steps):\n" driver seed
            (List.length plan.Dst.Plan.steps);
          List.iter
            (Printf.printf "    %s\n")
            outcome.Dst.Interp.violations
        end
      done;
      let dt = (Unix.gettimeofday [@lint.allow "D001"]) () -. t0 in
      Printf.printf
        "  %-12s %3d plans  %5d crashes recovered  %2d rot runs  %s  %6.2fs (%.1f plans/s)\n%!"
        driver seeds !crashes !rot
        (if !bad = 0 then "ok  " else Printf.sprintf "%dBAD" !bad)
        dt
        (float_of_int seeds /. dt))
    drivers;
  if !total_violations > 0 then
    Printf.printf "DST soak: %d violations — see above\n" !total_violations
  else Printf.printf "DST soak: all invariants held\n"
