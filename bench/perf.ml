(** Perf regression harness (`bench perf`): machine-readable CPU numbers.

    Runs the Bechamel micro kernels plus warmed macro loops over the read
    and insert hot paths, and writes [BENCH_PR2.json] (ns/op and ops/sec
    per kernel, alongside the recorded pre-PR-2 baseline) so every later
    PR has a perf trajectory to diff against. Wall-clock numbers use
    best-of-N timing to shrug off scheduler noise; the simulated-I/O
    counters are also snapshotted around the lookup loop so the harness
    doubles as a cost-model invariance check (CPU optimizations must not
    change what the workload is charged). *)

(* Pre-PR-2 baselines: ns/op measured at commit ad00522 (the seed read
   path: per-fetch 4 KiB copy + re-CRC, linear record decode, byte-at-a-
   time CRC32C), same container, best of 5. Recorded here so the JSON
   reports both sides of the before/after comparison. *)
let baselines =
  [
    ("crc32c.4KiB", 14730.8);
    ("sstable.point_lookup.warm", 18632.4);
    ("tree.insert.c0", 2605.8);
    ("skiplist.set_find.prebuilt", 1197.6);
  ]

let baseline_ns name =
  match List.assoc_opt name baselines with
  | Some b when b > 0.0 -> Some b
  | _ -> None

(* Best-of-[repeats] wall-clock ns/op of [iters] calls to [f]. *)
(* The perf harness measures real elapsed time by design. *)
let[@lint.allow "D001"] time_best ~repeats ~iters f =
  f ();
  (* warm code paths and caches before the first timed run *)
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let ns = dt *. 1e9 /. float_of_int iters in
    if ns < !best then best := ns
  done;
  !best

type kernel = {
  k_name : string;
  k_ns : float;
  k_baseline : float option;
  k_group : string; (* "macro" | "bechamel" *)
}

let mk_store ~buffer_pages () =
  Pagestore.Store.create
    ~config:
      {
        Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = buffer_pages;
        cfg_durability = Pagestore.Wal.None_;
      }
    Simdisk.Profile.ssd_raid0

(* ------------------------------------------------------------------ *)
(* Macro kernels *)

let crc_kernel ~repeats ~iters =
  let payload = String.make 4096 'x' in
  time_best ~repeats ~iters (fun () ->
      ignore (Repro_util.Crc32c.string payload))

(* Warmed point lookup: every page of a 10k-record component fits in the
   pool, so after warmup each get is pure CPU — index binary search, one
   pool hit, in-page record search. This is the paper's "one seek" path
   with the seek already paid (§3.1.1). Returns (ns/op, io_diff). *)
let lookup_records = 10_000

let lookup_key i = Printf.sprintf "key%08d" (i * 7919 mod lookup_records)

let build_lookup_sst () =
  let store = mk_store ~buffer_pages:1024 () in
  let b = Sstable.Builder.create ~extent_pages:256 store in
  for i = 0 to lookup_records - 1 do
    Sstable.Builder.add b
      (Printf.sprintf "key%08d" i)
      (Kv.Entry.Base (String.make 100 'v'))
  done;
  let footer = Sstable.Builder.finish b ~timestamp:1 in
  ( store,
    Sstable.Reader.open_in_ram store footer
      ~index:(Sstable.Builder.index_blob b) )

let lookup_kernel ~repeats ~iters =
  let store, sst = build_lookup_sst () in
  (* warm the pool: touch every key once *)
  for i = 0 to lookup_records - 1 do
    ignore (Sstable.Reader.get sst (lookup_key i))
  done;
  let i = ref 0 in
  let ns =
    time_best ~repeats ~iters (fun () ->
        incr i;
        match Sstable.Reader.get sst (lookup_key !i) with
        | Some _ -> ()
        | None -> failwith "perf: warmed lookup missed")
  in
  (* Cost-model probe: warmed lookups must charge zero simulated I/O. *)
  let disk = Pagestore.Store.disk store in
  let before = Simdisk.Disk.snapshot disk in
  for j = 1 to 1000 do
    ignore (Sstable.Reader.get sst (lookup_key j))
  done;
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  (ns, d)

(* Returns (ns/op, trace_noop_ok): the tracer is never enabled here, so
   a single event reaching the sink would mean the "zero-cost when
   disabled" contract broke somewhere on the insert path. *)
let insert_kernel ~repeats ~iters =
  let store = mk_store ~buffer_pages:1024 () in
  let config =
    { Blsm.Config.default with Blsm.Config.c0_bytes = 512 * 1024 * 1024 }
  in
  let tree = Blsm.Tree.create ~config store in
  let i = ref 0 in
  let ns =
    time_best ~repeats ~iters (fun () ->
        incr i;
        Blsm.Tree.put tree
          (Repro_util.Keygen.key_of_id (!i mod 100_000))
          (String.make 100 'v'))
  in
  (ns, Obs.Trace.events_emitted (Pagestore.Store.trace store) = 0)

let skiplist_kernel ~repeats ~iters =
  let sl = Memtable.Skiplist.create () in
  for i = 0 to 9_999 do
    Memtable.Skiplist.set sl (Printf.sprintf "key%06d" i) i
  done;
  let i = ref 0 in
  time_best ~repeats ~iters (fun () ->
      incr i;
      let k = Printf.sprintf "key%06d" (!i * 7919 mod 10_000) in
      Memtable.Skiplist.set sl k !i;
      ignore (Memtable.Skiplist.find sl k))

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf " "
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ~path ~kernels ~io_ok ~trace_noop_ok =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 2,\n";
  out "  \"harness\": \"bench perf\",\n";
  out "  \"units\": \"ns_per_op\",\n";
  out "  \"io_invariance_ok\": %b,\n" io_ok;
  out "  \"trace_noop_ok\": %b,\n" trace_noop_ok;
  out "  \"kernels\": [\n";
  let n = List.length kernels in
  List.iteri
    (fun idx k ->
      out "    {\"name\": \"%s\", \"group\": \"%s\", \"ns_per_op\": %.1f, \"ops_per_sec\": %.0f"
        (json_escape k.k_name) k.k_group k.k_ns
        (if k.k_ns > 0.0 then 1e9 /. k.k_ns else 0.0);
      (match k.k_baseline with
      | Some b ->
          out ", \"baseline_ns_per_op\": %.1f, \"speedup_vs_baseline\": %.2f" b
            (b /. k.k_ns)
      | None -> ());
      out "}%s\n" (if idx = n - 1 then "" else ","))
    kernels;
  out "  ]\n";
  out "}\n";
  close_out oc

(* ------------------------------------------------------------------ *)

let run ?(out = "BENCH_PR2.json") (s : Scale.t) =
  Scale.section "Perf regression harness (writes BENCH_PR2.json)";
  let quick = s.Scale.ops < 8_000 in
  let repeats = if quick then 3 else 5 in
  let iters = if quick then 4_000 else 20_000 in
  let macro name ns =
    { k_name = name; k_ns = ns; k_baseline = baseline_ns name; k_group = "macro" }
  in
  let crc = crc_kernel ~repeats ~iters in
  let lookup_ns, io = lookup_kernel ~repeats ~iters in
  let insert, trace_noop_ok = insert_kernel ~repeats ~iters:(iters * 2) in
  let skiplist = skiplist_kernel ~repeats ~iters:(iters * 2) in
  let io_ok =
    io.Simdisk.Disk.seeks = 0
    && io.Simdisk.Disk.seq_read_bytes = 0
    && io.Simdisk.Disk.random_read_bytes = 0
  in
  let kernels =
    [
      macro "crc32c.4KiB" crc;
      macro "sstable.point_lookup.warm" lookup_ns;
      macro "tree.insert.c0" insert;
      macro "skiplist.set_find.prebuilt" skiplist;
    ]
    @ (if quick then []
       else
         List.map
           (fun (name, ns) ->
             { k_name = name; k_ns = ns; k_baseline = None; k_group = "bechamel" })
           (Micro.collect ()))
  in
  List.iter
    (fun k ->
      let base =
        match k.k_baseline with
        | Some b -> Printf.sprintf "  (baseline %10.1f, x%.2f)" b (b /. k.k_ns)
        | None -> ""
      in
      Printf.printf "%-44s %12.1f ns/op%s\n" k.k_name k.k_ns base)
    kernels;
  if not io_ok then
    Printf.printf
      "WARNING: warmed lookups charged simulated I/O (seeks=%d seq=%dB rand=%dB)\n"
      io.Simdisk.Disk.seeks io.Simdisk.Disk.seq_read_bytes
      io.Simdisk.Disk.random_read_bytes;
  if not trace_noop_ok then
    Printf.printf
      "WARNING: disabled tracer emitted events during the insert kernel\n";
  write_json ~path:out ~kernels ~io_ok ~trace_noop_ok;
  Printf.printf "wrote %s\n" out
