(** Perf regression harness (`bench perf`): machine-readable CPU numbers.

    Runs the Bechamel micro kernels plus warmed macro loops over the read
    and insert hot paths, and writes [BENCH_PR2.json] (ns/op and ops/sec
    per kernel, alongside the recorded pre-PR-2 baseline) so every later
    PR has a perf trajectory to diff against. Wall-clock numbers use
    best-of-N timing to shrug off scheduler noise; the simulated-I/O
    counters are also snapshotted around the lookup loop so the harness
    doubles as a cost-model invariance check (CPU optimizations must not
    change what the workload is charged). *)

(* Pre-PR-2 baselines: ns/op measured at commit ad00522 (the seed read
   path: per-fetch 4 KiB copy + re-CRC, linear record decode, byte-at-a-
   time CRC32C), same container, best of 5. Recorded here so the JSON
   reports both sides of the before/after comparison. *)
let baselines =
  [
    ("crc32c.4KiB", 14730.8);
    ("sstable.point_lookup.warm", 18632.4);
    ("tree.insert.c0", 2605.8);
    ("skiplist.set_find.prebuilt", 1197.6);
  ]

let baseline_ns name =
  match List.assoc_opt name baselines with
  | Some b when b > 0.0 -> Some b
  | _ -> None

(* Best-of-[repeats] wall-clock ns/op of [iters] calls to [f]. *)
(* The perf harness measures real elapsed time by design. *)
let[@lint.allow "D001"] time_best ~repeats ~iters f =
  f ();
  (* warm code paths and caches before the first timed run *)
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let ns = dt *. 1e9 /. float_of_int iters in
    if ns < !best then best := ns
  done;
  !best

type kernel = {
  k_name : string;
  k_ns : float;
  k_baseline : float option;
  k_group : string; (* "macro" | "bechamel" *)
}

let mk_store ~buffer_pages () =
  Pagestore.Store.create
    ~config:
      {
        Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = buffer_pages;
        cfg_durability = Pagestore.Wal.None_;
      }
    Simdisk.Profile.ssd_raid0

(* ------------------------------------------------------------------ *)
(* Macro kernels *)

let crc_kernel ~repeats ~iters =
  let payload = String.make 4096 'x' in
  time_best ~repeats ~iters (fun () ->
      ignore (Repro_util.Crc32c.string payload))

(* Warmed point lookup: every page of a 10k-record component fits in the
   pool, so after warmup each get is pure CPU — fence search, one pool
   hit, in-page record search. This is the paper's "one seek" path with
   the seek already paid (§3.1.1). Returns (ns/op, io_diff). *)
let lookup_records = 10_000

let lookup_key i = Printf.sprintf "key%08d" (i * 7919 mod lookup_records)

let build_lookup_sst ?(format = Sstable.Sst_format.V1) () =
  let store = mk_store ~buffer_pages:1024 () in
  let b = Sstable.Builder.create ~format ~extent_pages:256 store in
  for i = 0 to lookup_records - 1 do
    Sstable.Builder.add b
      (Printf.sprintf "key%08d" i)
      (Kv.Entry.Base (String.make 100 'v'))
  done;
  let footer = Sstable.Builder.finish b ~timestamp:1 in
  ( store,
    Sstable.Reader.open_in_ram store footer
      ~index:(Sstable.Builder.index_blob b) )

let lookup_kernel ?format ~repeats ~iters () =
  let store, sst = build_lookup_sst ?format () in
  (* warm the pool: touch every key once *)
  for i = 0 to lookup_records - 1 do
    ignore (Sstable.Reader.get sst (lookup_key i))
  done;
  let i = ref 0 in
  let ns =
    time_best ~repeats ~iters (fun () ->
        incr i;
        match Sstable.Reader.get sst (lookup_key !i) with
        | Some _ -> ()
        | None -> failwith "perf: warmed lookup missed")
  in
  (* Cost-model probe: warmed lookups must charge zero simulated I/O. *)
  let disk = Pagestore.Store.disk store in
  let before = Simdisk.Disk.snapshot disk in
  for j = 1 to 1000 do
    ignore (Sstable.Reader.get sst (lookup_key j))
  done;
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  (ns, d)

(* Returns (ns/op, trace_noop_ok): the tracer is never enabled here, so
   a single event reaching the sink would mean the "zero-cost when
   disabled" contract broke somewhere on the insert path. *)
let insert_kernel ~repeats ~iters =
  let store = mk_store ~buffer_pages:1024 () in
  let config =
    { Blsm.Config.default with Blsm.Config.c0_bytes = 512 * 1024 * 1024 }
  in
  let tree = Blsm.Tree.create ~config store in
  let i = ref 0 in
  let ns =
    time_best ~repeats ~iters (fun () ->
        incr i;
        Blsm.Tree.put tree
          (Repro_util.Keygen.key_of_id (!i mod 100_000))
          (String.make 100 'v'))
  in
  (ns, Obs.Trace.events_emitted (Pagestore.Store.trace store) = 0)

(* ------------------------------------------------------------------ *)
(* PR-7 read-path kernels: fence search, Bloom layouts, scan/miss I/O *)

(* Eytzinger fence descent vs the pre-PR-7 shape (binary search over the
   sorted first-key array), same keys, same probe stream. *)
let fence_kernel ~repeats ~iters =
  (* 32k fenced pages ~ a 128 MiB C2 at 4 KiB pages: the fence array no
     longer fits L2, which is where the BFS layout's locality pays. *)
  let n = 32_768 in
  let keys = Array.init n (Printf.sprintf "key%08d") in
  let pos = Array.init n (fun i -> i) in
  let fence = Sstable.Sst_format.Fence.of_sorted ~keys ~pos () in
  let nprobes = 8192 in
  let probes =
    Array.init nprobes (fun i -> Printf.sprintf "key%08d" (i * 7919 mod n))
  in
  let i = ref 0 in
  let ey =
    time_best ~repeats ~iters (fun () ->
        incr i;
        ignore
          (Sstable.Sst_format.Fence.locate fence
             probes.(!i land (nprobes - 1))))
  in
  let bin_locate key =
    let lo = ref 0 and hi = ref (n - 1) and res = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if String.compare keys.(mid) key <= 0 then begin
        res := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    !res
  in
  let i = ref 0 in
  let bs =
    time_best ~repeats ~iters (fun () ->
        incr i;
        ignore (bin_locate probes.(!i land (nprobes - 1))))
  in
  (ey, bs)

(* Bloom membership ns/op on a YCSB-C-style read-only mix (95% present /
   5% absent) plus exact false-positive counts for both layouts at equal
   bits/key. Hashing is deterministic, so the FP counts are exact. *)
let bloom_fp_probes = 200_000

let bloom_kernels ~repeats ~iters =
  let n = 100_000 in
  let mk kind =
    let b = Bloom.create ~kind ~expected_items:n () in
    for i = 0 to n - 1 do
      Bloom.add b (Printf.sprintf "user%010d" i)
    done;
    b
  in
  let std = mk Bloom.Standard and blk = mk Bloom.Blocked in
  let nprobes = 8192 in
  let probes =
    Array.init nprobes (fun i ->
        if i mod 20 = 0 then Printf.sprintf "miss%010d" i
        else Printf.sprintf "user%010d" (i * 7919 mod n))
  in
  let time b =
    let i = ref 0 in
    time_best ~repeats ~iters (fun () ->
        incr i;
        ignore (Bloom.mem b probes.(!i land (nprobes - 1))))
  in
  let ns_std = time std and ns_blk = time blk in
  let fp b =
    let c = ref 0 in
    for i = 0 to bloom_fp_probes - 1 do
      if Bloom.mem b (Printf.sprintf "absent%010d" i) then incr c
    done;
    !c
  in
  (ns_std, ns_blk, fp std, fp blk)

(* Cold read-path simulated I/O, V1 vs V2 on identical records: full
   scan and tail scan (prefix compression shrinks pages; the fence's
   zone maps let a mid-table start skip the floor page) and zone-mapped
   point misses (answered with zero I/O under V2). Sizes are fixed —
   independent of --quick — so the byte counts are exact regression
   gates, not statistics. *)
type readpath_io = {
  rp_data_pages : int;
  rp_full_scan_bytes : int;
  rp_tail_scan_bytes : int;
  rp_zone_miss_bytes : int;
}

let readpath_records = 20_000

let build_readpath_sst format =
  let store = mk_store ~buffer_pages:1024 () in
  let b = Sstable.Builder.create ~format ~extent_pages:256 store in
  for i = 0 to readpath_records - 1 do
    Sstable.Builder.add b
      (Printf.sprintf "key%08d" i)
      (Kv.Entry.Base (String.make 100 'v'))
  done;
  let footer = Sstable.Builder.finish b ~timestamp:1 in
  ( store,
    footer,
    Sstable.Reader.open_in_ram store footer
      ~index:(Sstable.Builder.index_blob b) )

let readpath_measure (store, footer, sst) ~zone_probes =
  let disk = Pagestore.Store.disk store in
  let read_bytes d =
    d.Simdisk.Disk.seq_read_bytes + d.Simdisk.Disk.random_read_bytes
  in
  let cold f =
    Pagestore.Store.crash store;
    let before = Simdisk.Disk.snapshot disk in
    f ();
    read_bytes (Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk))
  in
  let drain it =
    let n = ref 0 in
    let rec go () =
      match Sstable.Reader.iter_next it with
      | None -> ()
      | Some _ ->
          incr n;
          go ()
    in
    go ();
    !n
  in
  let full_scan_bytes =
    cold (fun () ->
        if drain (Sstable.Reader.iterator sst) <> readpath_records then
          failwith "perf: full scan lost records")
  in
  let tail_from = Printf.sprintf "key%08dx" (readpath_records - 1001) in
  let tail_scan_bytes =
    cold (fun () ->
        if drain (Sstable.Reader.iterator ~from:tail_from sst) <> 1000 then
          failwith "perf: tail scan lost records")
  in
  let zone_miss_bytes =
    cold (fun () ->
        List.iter
          (fun p ->
            match Sstable.Reader.get sst p with
            | None -> ()
            | Some _ -> failwith "perf: gap probe found a record")
          zone_probes)
  in
  {
    rp_data_pages = footer.Sstable.Sst_format.data_pages;
    rp_full_scan_bytes = full_scan_bytes;
    rp_tail_scan_bytes = tail_scan_bytes;
    rp_zone_miss_bytes = zone_miss_bytes;
  }

(* V1 vs V2 on identical records. The miss-probe set is the gaps the V2
   fence's zone maps reject (key sorts after its floor page's last key):
   free under V2, one page read each under V1. Both versions measure the
   exact same keys. *)
let readpath_section () =
  let ((_, _, v2_sst) as v2) = build_readpath_sst Sstable.Sst_format.V2 in
  let zone_probes =
    List.filter
      (fun p -> Sstable.Reader.locate v2_sst p = None)
      (List.init readpath_records (fun i -> Printf.sprintf "key%08d!" i))
  in
  if List.length zone_probes < 10 then failwith "perf: no zone-rejected gaps";
  let v2_io = readpath_measure v2 ~zone_probes in
  let v1_io = readpath_measure (build_readpath_sst Sstable.Sst_format.V1) ~zone_probes in
  (v1_io, v2_io, List.length zone_probes)

let skiplist_kernel ~repeats ~iters =
  let sl = Memtable.Skiplist.create () in
  for i = 0 to 9_999 do
    Memtable.Skiplist.set sl (Printf.sprintf "key%06d" i) i
  done;
  let i = ref 0 in
  time_best ~repeats ~iters (fun () ->
      incr i;
      let k = Printf.sprintf "key%06d" (!i * 7919 mod 10_000) in
      Memtable.Skiplist.set sl k !i;
      ignore (Memtable.Skiplist.find sl k))

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf " "
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ~path ~kernels ~io_ok ~trace_noop_ok =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 2,\n";
  out "  \"harness\": \"bench perf\",\n";
  out "  \"units\": \"ns_per_op\",\n";
  out "  \"io_invariance_ok\": %b,\n" io_ok;
  out "  \"trace_noop_ok\": %b,\n" trace_noop_ok;
  out "  \"kernels\": [\n";
  let n = List.length kernels in
  List.iteri
    (fun idx k ->
      out "    {\"name\": \"%s\", \"group\": \"%s\", \"ns_per_op\": %.1f, \"ops_per_sec\": %.0f"
        (json_escape k.k_name) k.k_group k.k_ns
        (if k.k_ns > 0.0 then 1e9 /. k.k_ns else 0.0);
      (match k.k_baseline with
      | Some b ->
          out ", \"baseline_ns_per_op\": %.1f, \"speedup_vs_baseline\": %.2f" b
            (b /. k.k_ns)
      | None -> ());
      out "}%s\n" (if idx = n - 1 then "" else ","))
    kernels;
  out "  ]\n";
  out "}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* PR-7 regression gates (checked on every `bench perf` run; the
   @perf-smoke alias fails when one trips). The wall-clock gate's
   recorded baseline carries deliberate headroom — best-of-N on a shared
   container still jitters — so it only trips on gross regressions; the
   byte-count gates are simulated-I/O counters, deterministic and exact,
   and get the tight 10% bound. Recorded 2026-08-07 on the PR-7 read
   path (quick mode, best of 3). *)
let gate_lookup_warm_v2_ns = 2200.0 (* measured ~1.2us; ~1.8x headroom *)
let gate_tail_scan_v2_bytes = 114_688 (* exact: 28 pages x 4 KiB *)

type gate = { g_name : string; g_value : float; g_limit : float; g_ok : bool }

let gate name value limit =
  { g_name = name; g_value = value; g_limit = limit; g_ok = value <= limit }

let write_pr7_json ~path ~seed ~kernels ~fp_std ~fp_blk ~v1_io ~v2_io
    ~zone_probes ~gates =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 7,\n";
  out "  \"harness\": \"bench perf\",\n";
  out "  \"units\": \"ns_per_op\",\n";
  out "  \"seed\": %d,\n" seed;
  out
    "  \"config\": {\"page_size\": 4096, \"bloom_bits_per_key\": 10, \
     \"restart_interval\": %d, \"bloom_block_bits\": %d, \"records\": %d},\n"
    Sstable.Sst_format.restart_interval Bloom.block_bits readpath_records;
  out "  \"kernels\": [\n";
  let n = List.length kernels in
  List.iteri
    (fun idx (name, ns, base_name, base_ns) ->
      out
        "    {\"name\": \"%s\", \"ns_per_op\": %.1f, \"baseline\": \"%s\", \
         \"baseline_ns_per_op\": %.1f, \"speedup\": %.2f}%s\n"
        (json_escape name) ns (json_escape base_name) base_ns (base_ns /. ns)
        (if idx = n - 1 then "" else ","))
    kernels;
  out "  ],\n";
  out
    "  \"bloom_fp\": {\"probes\": %d, \"standard\": %d, \"blocked\": %d, \
     \"blocked_over_standard\": %.2f},\n"
    bloom_fp_probes fp_std fp_blk
    (float_of_int fp_blk /. float_of_int (max 1 fp_std));
  let io_obj tag io =
    out
      "    \"%s\": {\"data_pages\": %d, \"full_scan_bytes\": %d, \
       \"tail_scan_bytes\": %d, \"zone_gap_miss_bytes\": %d}"
      tag io.rp_data_pages io.rp_full_scan_bytes io.rp_tail_scan_bytes
      io.rp_zone_miss_bytes
  in
  out "  \"cold_io\": {\n";
  io_obj "v1" v1_io;
  out ",\n";
  io_obj "v2" v2_io;
  out ",\n";
  out "    \"zone_gap_probes\": %d,\n" zone_probes;
  out "    \"tail_scan_bytes_saved\": %d,\n"
    (v1_io.rp_tail_scan_bytes - v2_io.rp_tail_scan_bytes);
  out "    \"full_scan_bytes_saved\": %d\n"
    (v1_io.rp_full_scan_bytes - v2_io.rp_full_scan_bytes);
  out "  },\n";
  out "  \"gates\": [\n";
  let ng = List.length gates in
  List.iteri
    (fun idx g ->
      out "    {\"name\": \"%s\", \"value\": %.1f, \"limit\": %.1f, \"ok\": %b}%s\n"
        (json_escape g.g_name) g.g_value g.g_limit g.g_ok
        (if idx = ng - 1 then "" else ","))
    gates;
  out "  ]\n";
  out "}\n";
  close_out oc

let run ?(out = "BENCH_PR2.json") (s : Scale.t) =
  Scale.section "Perf regression harness (writes BENCH_PR2.json + BENCH_PR7.json)";
  let quick = s.Scale.ops < 8_000 in
  let repeats = if quick then 3 else 5 in
  let iters = if quick then 4_000 else 20_000 in
  let macro name ns =
    { k_name = name; k_ns = ns; k_baseline = baseline_ns name; k_group = "macro" }
  in
  let crc = crc_kernel ~repeats ~iters in
  let lookup_ns, io = lookup_kernel ~repeats ~iters () in
  let insert, trace_noop_ok = insert_kernel ~repeats ~iters:(iters * 2) in
  let skiplist = skiplist_kernel ~repeats ~iters:(iters * 2) in
  let io_ok =
    io.Simdisk.Disk.seeks = 0
    && io.Simdisk.Disk.seq_read_bytes = 0
    && io.Simdisk.Disk.random_read_bytes = 0
  in
  let kernels =
    [
      macro "crc32c.4KiB" crc;
      macro "sstable.point_lookup.warm" lookup_ns;
      macro "tree.insert.c0" insert;
      macro "skiplist.set_find.prebuilt" skiplist;
    ]
    @ (if quick then []
       else
         List.map
           (fun (name, ns) ->
             { k_name = name; k_ns = ns; k_baseline = None; k_group = "bechamel" })
           (Micro.collect ()))
  in
  List.iter
    (fun k ->
      let base =
        match k.k_baseline with
        | Some b -> Printf.sprintf "  (baseline %10.1f, x%.2f)" b (b /. k.k_ns)
        | None -> ""
      in
      Printf.printf "%-44s %12.1f ns/op%s\n" k.k_name k.k_ns base)
    kernels;
  if not io_ok then
    Printf.printf
      "WARNING: warmed lookups charged simulated I/O (seeks=%d seq=%dB rand=%dB)\n"
      io.Simdisk.Disk.seeks io.Simdisk.Disk.seq_read_bytes
      io.Simdisk.Disk.random_read_bytes;
  if not trace_noop_ok then
    Printf.printf
      "WARNING: disabled tracer emitted events during the insert kernel\n";
  write_json ~path:out ~kernels ~io_ok ~trace_noop_ok;
  Printf.printf "wrote %s\n" out;
  (* ---- PR-7 read-path sections ---- *)
  Scale.section "Read-path kernels (fence / Bloom layouts / scan+miss I/O)";
  let lookup_v2_ns, io_v2 = lookup_kernel ~format:Sstable.Sst_format.V2 ~repeats ~iters () in
  let fence_ey, fence_bin = fence_kernel ~repeats ~iters:(iters * 4) in
  let bloom_std, bloom_blk, fp_std, fp_blk = bloom_kernels ~repeats ~iters:(iters * 4) in
  let v1_io, v2_io, zone_probes = readpath_section () in
  let io_v2_ok =
    io_v2.Simdisk.Disk.seeks = 0
    && io_v2.Simdisk.Disk.seq_read_bytes = 0
    && io_v2.Simdisk.Disk.random_read_bytes = 0
  in
  if not io_v2_ok then
    Printf.printf "WARNING: warmed V2 lookups charged simulated I/O\n";
  let pr7_kernels =
    [
      ("fence.locate.eytzinger", fence_ey, "sorted-array binary search", fence_bin);
      ("sstable.point_lookup.warm.v2", lookup_v2_ns, "v1 same process", lookup_ns);
      ("bloom.mem.blocked", bloom_blk, "bloom.mem.standard", bloom_std);
    ]
  in
  List.iter
    (fun (name, ns, bname, bns) ->
      Printf.printf "%-44s %12.1f ns/op  (%s %10.1f, x%.2f)\n" name ns bname
        bns (bns /. ns))
    pr7_kernels;
  Printf.printf "bloom fp @ %d absent probes: standard %d, blocked %d (x%.2f)\n"
    bloom_fp_probes fp_std fp_blk
    (float_of_int fp_blk /. float_of_int (max 1 fp_std));
  Printf.printf
    "cold io: v1 pages=%d full=%dB tail=%dB gap-miss=%dB | v2 pages=%d full=%dB \
     tail=%dB gap-miss=%dB (%d gap probes)\n"
    v1_io.rp_data_pages v1_io.rp_full_scan_bytes v1_io.rp_tail_scan_bytes
    v1_io.rp_zone_miss_bytes v2_io.rp_data_pages v2_io.rp_full_scan_bytes
    v2_io.rp_tail_scan_bytes v2_io.rp_zone_miss_bytes zone_probes;
  let gates =
    [
      gate "sstable.point_lookup.warm.v2.ns" lookup_v2_ns
        (gate_lookup_warm_v2_ns *. 1.1);
      gate "scan.v2.cold_tail.bytes"
        (float_of_int v2_io.rp_tail_scan_bytes)
        (float_of_int gate_tail_scan_v2_bytes *. 1.1);
      gate "miss.v2.zone.bytes" (float_of_int v2_io.rp_zone_miss_bytes) 0.0;
      gate "bloom.blocked.fp_vs_standard"
        (float_of_int fp_blk)
        (2.0 *. float_of_int fp_std);
      gate "scan.v2_vs_v1.tail_bytes"
        (float_of_int v2_io.rp_tail_scan_bytes)
        (float_of_int v1_io.rp_tail_scan_bytes);
    ]
  in
  write_pr7_json ~path:"BENCH_PR7.json" ~seed:s.Scale.seed ~kernels:pr7_kernels
    ~fp_std ~fp_blk ~v1_io ~v2_io ~zone_probes ~gates;
  Printf.printf "wrote BENCH_PR7.json\n";
  let failed = List.filter (fun g -> not g.g_ok) gates in
  List.iter
    (fun g ->
      Printf.printf "GATE FAILED: %s = %.1f > limit %.1f\n" g.g_name g.g_value
        g.g_limit)
    failed;
  if failed <> [] then exit 1
