(** Compaction design-space grid (`bench grid`): policy x workload mix
    x size ratio, charting where bLSM's two-level snowshovel wins and
    loses against the four {!Blsm.Compaction_policy} disciplines.

    Methodology (DESIGN.md §14): every cell preloads the same pinned
    store the stability soak uses (4 000 records x 400 B values, 128 KiB
    C0, SSD profile) and then drives one closed-loop workload mix on the
    simulated clock, recording per-window latency histograms with
    {!Obs.Windows} — the cell reports both the whole-cell p99.9 and the
    worst single-window p99.9, so a policy that is fast on average but
    stalls in bursts cannot hide. Write amplification is physical bytes
    written (disk counter deltas) over logical bytes accepted;
    space amplification is resident run bytes over live logical bytes.
    Every cell's final contents are checked against an in-memory mirror
    (oracle equality), so a policy that loses or resurrects data fails
    the bench rather than winning it.

    The snowshovel row is the seed engine on exactly the soak's tree
    configuration (spring scheduler, snowshovel merges), so its numbers
    are directly comparable with BENCH_PR8.json; its topology is fixed
    (two on-disk levels), so it spans the size-ratio axis as one
    "fixed" column.

    Writes [BENCH_PR9.json]. Exits 1 when a gate trips: an oracle
    mismatch in any cell, a per-policy overwrite p99.9 past its recorded
    ceiling, or two same-seed passes that are not byte-identical — the
    [@grid-smoke] alias runs the 2x2 `--quick` grid under `runtest`. *)

module H = Repro_util.Histogram

(* Pinned workload, shared with `bench soak` (see soak.ml). *)
let preload_records = 4_000
let value_bytes = 400
let c0_bytes = 128 * 1024
let cell_ops = 1_500

(* Narrow enough that a quick cell still spans 10+ windows of simulated
   time — the worst-window column must be able to see a single burst. *)
let window_us = 500

(* Quick (2x2) grid for the @grid-smoke gate. *)
let quick_records = 1_000
let quick_ops = 500

(* Per-policy whole-cell p99.9 ceilings on the overwrite mix, recorded
   2026-08-07 at seed 42 on the pinned quick grid (simulated clock —
   exact, headroom covers seed drift only). They gate the `--quick`
   grid, whose shape is pinned; a full run's scale is caller-chosen, so
   its absolute latencies are reported but not gated. *)
let p999_ceiling_us = function
  | "snowshovel" -> 3_000.0
  | "tiered" -> 3_000.0
  | "leveled" -> 6_000.0
  | "lazy-leveled" -> 4_000.0
  | "partial" -> 6_000.0
  | _ -> 10_000.0

let policies = [ "tiered"; "leveled"; "lazy-leveled"; "partial" ]
let workloads = [ "fill"; "overwrite"; "mixed" ]

module M = Map.Make (String)

let mk_store () =
  Pagestore.Store.create
    ~config:
      {
        Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = 1024;
        cfg_durability = Pagestore.Wal.Full;
      }
    Simdisk.Profile.ssd_raid0

let mk_snowshovel ~seed =
  let config =
    {
      Blsm.Config.default with
      Blsm.Config.c0_bytes;
      scheduler = Blsm.Config.Spring;
      snowshovel = true;
      seed;
    }
  in
  let t = Blsm.Tree.create ~config (mk_store ()) in
  (Blsm.Tree.engine t, fun () -> Blsm.Tree.disk_data_bytes t)

let mk_policy ~policy_name ~ratio ~seed =
  let policy = Option.get (Blsm.Compaction_policy.of_name policy_name) in
  let config =
    { Blsm.Config.default with Blsm.Config.c0_bytes; seed }
  in
  let pconfig =
    { Blsm.Policy_tree.default_pconfig with Blsm.Policy_tree.pt_fanout = ratio }
  in
  let t =
    Blsm.Policy_tree.create ~config ~pconfig ~policy (mk_store ())
  in
  ( Blsm.Policy_tree.engine ~name:("policy-" ^ policy_name) t,
    fun () -> Blsm.Policy_tree.total_run_bytes t )

(* ------------------------------------------------------------------ *)
(* One cell *)

type cell = {
  c_engine : string;  (** "snowshovel" or a policy name *)
  c_workload : string;
  c_ratio : string;  (** "r<fanout>" or "fixed" (snowshovel topology) *)
  c_ops : int;
  c_lat : H.t;
  c_worst_window_p999 : int;
  c_windows : int;
  c_write_amp : float;
  c_space_amp : float;
  c_oracle_ok : bool;
}

let key i = Printf.sprintf "key%05d" i

let value i =
  let tag = Printf.sprintf "g%d." i in
  tag ^ String.make (max 0 (value_bytes - String.length tag)) 'x'

let run_cell ~seed ~engine_label ~ratio_label ~wname ~records ~ops
    (eng : Kv.Kv_intf.engine) resident_bytes =
  let disk = eng.Kv.Kv_intf.disk in
  let oracle : string M.t ref = ref M.empty in
  let prng =
    let mix =
      String.fold_left
        (fun h c -> (h * 31) + Char.code c)
        seed
        (engine_label ^ "/" ^ wname ^ "/" ^ ratio_label)
    in
    Repro_util.Prng.of_int mix
  in
  let user = ref 0 in
  let opaque_put k v =
    eng.Kv.Kv_intf.put k v;
    oracle := M.add k v !oracle;
    user := !user + String.length k + String.length v
  in
  let opaque_del k =
    eng.Kv.Kv_intf.delete k;
    oracle := M.remove k !oracle;
    user := !user + String.length k
  in
  let before = Simdisk.Disk.snapshot disk in
  for i = 0 to records - 1 do
    opaque_put (key i) (value i)
  done;
  let fresh = ref records in
  let windows = Obs.Windows.create ~width_us:window_us in
  let lat = H.create () in
  for i = 1 to ops do
    let t0 = Simdisk.Disk.now_us disk in
    (match wname with
    | "fill" ->
        opaque_put (key !fresh) (value i);
        incr fresh
    | "overwrite" ->
        if Repro_util.Prng.int prng 10 = 0 then
          ignore (eng.Kv.Kv_intf.get (key (Repro_util.Prng.int prng records)))
        else opaque_put (key (Repro_util.Prng.int prng records)) (value i)
    | "mixed" -> (
        match Repro_util.Prng.int prng 20 with
        | 0 | 1 | 2 ->
            opaque_del (key (Repro_util.Prng.int prng records))
        | 3 | 4 | 5 ->
            opaque_put (key !fresh) (value i);
            incr fresh
        | 6 | 7 ->
            ignore
              (eng.Kv.Kv_intf.scan
                 (key (Repro_util.Prng.int prng records))
                 10)
        | 8 | 9 | 10 | 11 ->
            ignore (eng.Kv.Kv_intf.get (key (Repro_util.Prng.int prng records)))
        | _ -> opaque_put (key (Repro_util.Prng.int prng records)) (value i))
    | w -> invalid_arg ("unknown workload " ^ w));
    let now = Simdisk.Disk.now_us disk in
    let l = int_of_float (now -. t0) in
    H.add lat l;
    Obs.Windows.record windows ~time_us:now ~latency_us:l
  done;
  eng.Kv.Kv_intf.maintenance ();
  let after = Simdisk.Disk.snapshot disk in
  let d = Simdisk.Disk.diff before after in
  let live_bytes =
    M.fold (fun k v a -> a + String.length k + String.length v) !oracle 0
  in
  let got = eng.Kv.Kv_intf.scan "" max_int in
  let oracle_ok = got = M.bindings !oracle in
  let rows = Obs.Windows.rows windows in
  let worst =
    List.fold_left (fun a r -> max a r.Obs.Windows.r_p999_us) 0 rows
  in
  {
    c_engine = engine_label;
    c_workload = wname;
    c_ratio = ratio_label;
    c_ops = ops;
    c_lat = lat;
    c_worst_window_p999 = worst;
    c_windows = List.length rows;
    c_write_amp =
      float_of_int
        (d.Simdisk.Disk.seq_write_bytes + d.Simdisk.Disk.random_write_bytes)
      /. float_of_int (max 1 !user);
    c_space_amp = float_of_int (resident_bytes ()) /. float_of_int (max 1 live_bytes);
    c_oracle_ok = oracle_ok;
  }

(* ------------------------------------------------------------------ *)
(* Grid + report *)

let run_grid ~quick ~seed =
  let records = if quick then quick_records else preload_records in
  let ops = if quick then quick_ops else cell_ops in
  let mixes = if quick then [ "fill"; "overwrite" ] else workloads in
  let pols = if quick then [ "tiered"; "leveled" ] else policies in
  let ratios = if quick then [ 4.0 ] else [ 2.0; 4.0 ] in
  let cells = ref [] in
  List.iter
    (fun wname ->
      let eng, resident = mk_snowshovel ~seed in
      cells :=
        run_cell ~seed ~engine_label:"snowshovel" ~ratio_label:"fixed"
          ~wname ~records ~ops eng resident
        :: !cells)
    mixes;
  List.iter
    (fun p ->
      List.iter
        (fun ratio ->
          List.iter
            (fun wname ->
              let eng, resident = mk_policy ~policy_name:p ~ratio ~seed in
              cells :=
                run_cell ~seed ~engine_label:p
                  ~ratio_label:(Printf.sprintf "r%g" ratio)
                  ~wname ~records ~ops eng resident
                :: !cells)
            mixes)
        ratios)
    pols;
  List.rev !cells

type gate = { g_name : string; g_value : float; g_limit : float; g_ok : bool }

let gate_max name value limit =
  { g_name = name; g_value = value; g_limit = limit; g_ok = value <= limit }

let report ~seed ~quick cells ~gates =
  let buf = Buffer.create 8_192 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"pr\": 9,\n";
  out "  \"harness\": \"bench grid\",\n";
  out "  \"seed\": %d,\n" seed;
  out "  \"quick\": %b,\n" quick;
  out
    "  \"config\": {\"records\": %d, \"value_bytes\": %d, \"c0_bytes\": %d, \
     \"cell_ops\": %d, \"window_us\": %d, \"snowshovel_row\": \"bench soak \
     tree config (spring + snowshovel, ssd_raid0)\"},\n"
    (if quick then quick_records else preload_records)
    value_bytes c0_bytes
    (if quick then quick_ops else cell_ops)
    window_us;
  out "  \"cells\": [\n";
  let n = List.length cells in
  List.iteri
    (fun i c ->
      out
        "    {\"engine\": \"%s\", \"workload\": \"%s\", \"size_ratio\": \
         \"%s\", \"ops\": %d, \"p50_us\": %d, \"p99_us\": %d, \"p999_us\": \
         %d, \"worst_window_p999_us\": %d, \"windows\": %d, \"write_amp\": \
         %.3f, \"space_amp\": %.3f, \"oracle_ok\": %b}%s\n"
        c.c_engine c.c_workload c.c_ratio c.c_ops
        (H.percentile c.c_lat 50.0)
        (H.percentile c.c_lat 99.0)
        (H.percentile c.c_lat 99.9)
        c.c_worst_window_p999 c.c_windows c.c_write_amp c.c_space_amp
        c.c_oracle_ok
        (if i = n - 1 then "" else ","))
    cells;
  out "  ],\n";
  out "  \"gates\": [\n";
  let ng = List.length gates in
  List.iteri
    (fun i g ->
      out
        "    {\"name\": \"%s\", \"value\": %.3f, \"limit\": %.3f, \"ok\": \
         %b}%s\n"
        g.g_name g.g_value g.g_limit g.g_ok
        (if i = ng - 1 then "" else ","))
    gates;
  out "  ]\n";
  out "}\n";
  Buffer.contents buf

let run ?(out = "BENCH_PR9.json") (s : Scale.t) =
  Scale.section
    "Compaction design-space grid: policy x workload x size ratio (writes \
     BENCH_PR9.json)";
  let seed = s.Scale.seed in
  (* `--quick` quarters Scale.records; treat that as the mini-grid ask. *)
  let quick = s.Scale.records < 40_000 / 2 in
  let cells = run_grid ~quick ~seed in
  let mismatches =
    List.length (List.filter (fun c -> not c.c_oracle_ok) cells)
  in
  let gates =
    gate_max "grid.oracle_mismatched_cells" (float_of_int mismatches) 0.0
    ::
    (if not quick then []
     else
       List.filter_map
         (fun c ->
           if c.c_workload = "overwrite" then
             Some
               (gate_max
                  (Printf.sprintf "grid.%s.%s.overwrite.p999_us" c.c_engine
                     c.c_ratio)
                  (float_of_int (H.percentile c.c_lat 99.9))
                  (p999_ceiling_us c.c_engine))
           else None)
         cells)
  in
  let doc = report ~seed ~quick cells ~gates in
  (* Determinism: a second same-seed pass must render the same bytes. *)
  let doc2 = report ~seed ~quick (run_grid ~quick ~seed) ~gates in
  let identical = String.equal doc doc2 in
  let gates =
    gates
    @ [
        {
          g_name = "grid.same_seed_byte_identical";
          g_value = (if identical then 1.0 else 0.0);
          g_limit = 1.0;
          g_ok = identical;
        };
      ]
  in
  let doc = report ~seed ~quick cells ~gates in
  let oc = open_out out in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s\n\n" out;
  Printf.printf "%-14s %-10s %-6s %9s %9s %9s %7s %7s\n" "engine" "workload"
    "ratio" "p99_us" "p999_us" "wrst_win" "w-amp" "s-amp";
  List.iter
    (fun c ->
      Printf.printf "%-14s %-10s %-6s %9d %9d %9d %7.2f %7.2f%s\n" c.c_engine
        c.c_workload c.c_ratio
        (H.percentile c.c_lat 99.0)
        (H.percentile c.c_lat 99.9)
        c.c_worst_window_p999 c.c_write_amp c.c_space_amp
        (if c.c_oracle_ok then "" else "  ORACLE MISMATCH"))
    cells;
  let failed = List.filter (fun g -> not g.g_ok) gates in
  List.iter
    (fun g ->
      Printf.printf "GATE FAILED: %s = %.3f vs limit %.3f\n" g.g_name g.g_value
        g.g_limit)
    failed;
  if failed <> [] then exit 1
